// Unit tests for ConnectionTimeline: folding the ProtocolObserver stream
// into phase intervals and annotated handshakes.
#include <gtest/gtest.h>

#include "telemetry/metrics.hpp"
#include "telemetry/timeline.hpp"

namespace odcm::telemetry {
namespace {

using core::PeerPhase;
using core::PeerRole;
using core::ProtocolEvent;

ProtocolEvent phase_change(fabric::RankId self, fabric::RankId peer,
                           PeerPhase from, PeerPhase to, PeerRole role,
                           sim::Time time) {
  return ProtocolEvent{.kind = ProtocolEvent::Kind::kPhaseChange,
                       .self = self,
                       .peer = peer,
                       .from = from,
                       .to = to,
                       .role = role,
                       .time = time};
}

ProtocolEvent note(ProtocolEvent::Kind kind, fabric::RankId self,
                   fabric::RankId peer, sim::Time time,
                   std::uint32_t attempt = 0) {
  return ProtocolEvent{.kind = kind,
                       .self = self,
                       .peer = peer,
                       .attempt = attempt,
                       .time = time};
}

TEST(ConnectionTimeline, ClientHandshakeProducesIntervalsAndHandshake) {
  MetricsRegistry reg;
  ConnectionTimeline timeline(&reg);
  timeline.on_event(phase_change(0, 1, PeerPhase::kIdle,
                                 PeerPhase::kRequesting, PeerRole::kClient,
                                 100));
  timeline.on_event(note(ProtocolEvent::Kind::kRetransmit, 0, 1, 200, 1));
  timeline.on_event(phase_change(0, 1, PeerPhase::kRequesting,
                                 PeerPhase::kEstablishing, PeerRole::kClient,
                                 300));
  timeline.on_event(note(ProtocolEvent::Kind::kQpBound, 0, 1, 310));
  timeline.on_event(phase_change(0, 1, PeerPhase::kEstablishing,
                                 PeerPhase::kConnected, PeerRole::kClient,
                                 400));
  timeline.finish(1000);

  ASSERT_EQ(timeline.intervals().size(), 3u);
  const auto& req = timeline.intervals()[0];
  EXPECT_EQ(req.phase, PeerPhase::kRequesting);
  EXPECT_EQ(req.start, 100u);
  EXPECT_EQ(req.end, 300u);
  EXPECT_TRUE(req.closed);
  const auto& est = timeline.intervals()[1];
  EXPECT_EQ(est.phase, PeerPhase::kEstablishing);
  EXPECT_EQ(est.start, 300u);
  EXPECT_EQ(est.end, 400u);
  const auto& conn = timeline.intervals()[2];
  EXPECT_EQ(conn.phase, PeerPhase::kConnected);
  EXPECT_EQ(conn.start, 400u);
  EXPECT_EQ(conn.end, 1000u);
  EXPECT_FALSE(conn.closed);  // still connected when the run ended

  ASSERT_EQ(timeline.handshakes().size(), 1u);
  const auto& hs = timeline.handshakes()[0];
  EXPECT_EQ(hs.self, 0u);
  EXPECT_EQ(hs.peer, 1u);
  EXPECT_EQ(hs.role, PeerRole::kClient);
  EXPECT_TRUE(hs.complete);
  EXPECT_EQ(hs.start, 100u);
  EXPECT_EQ(hs.established, 400u);
  EXPECT_EQ(hs.retransmits, 1u);
  ASSERT_EQ(hs.annotations.size(), 2u);
  EXPECT_EQ(hs.annotations[0].kind, ProtocolEvent::Kind::kRetransmit);
  EXPECT_EQ(hs.annotations[0].attempt, 1u);
  EXPECT_EQ(hs.annotations[1].kind, ProtocolEvent::Kind::kQpBound);

  EXPECT_EQ(reg.counter("conn/handshakes_completed"), 1);
  EXPECT_EQ(reg.counter("conn/retransmits"), 1);
  EXPECT_EQ(reg.counter("conn/qp_bound"), 1);
  ASSERT_NE(reg.histogram("conn/handshake_time"), nullptr);
  EXPECT_EQ(reg.histogram("conn/handshake_time")->sum(), 300u);
}

TEST(ConnectionTimeline, CollisionAndHeldRequestAnnotations) {
  MetricsRegistry reg;
  ConnectionTimeline timeline(&reg);
  // Server side: request held, then a collision absorbed while requesting.
  timeline.on_event(note(ProtocolEvent::Kind::kRequestHeld, 2, 3, 50));
  timeline.on_event(phase_change(2, 3, PeerPhase::kIdle,
                                 PeerPhase::kRequesting, PeerRole::kClient,
                                 60));
  timeline.on_event(note(ProtocolEvent::Kind::kCollision, 2, 3, 70));
  timeline.on_event(phase_change(2, 3, PeerPhase::kRequesting,
                                 PeerPhase::kEstablishing, PeerRole::kServer,
                                 80));
  timeline.on_event(note(ProtocolEvent::Kind::kReplyResend, 2, 3, 90));
  timeline.on_event(phase_change(2, 3, PeerPhase::kEstablishing,
                                 PeerPhase::kConnected, PeerRole::kServer,
                                 100));
  timeline.finish(200);

  ASSERT_EQ(timeline.handshakes().size(), 1u);
  const auto& hs = timeline.handshakes()[0];
  EXPECT_EQ(hs.collisions, 1u);
  EXPECT_EQ(hs.reply_resends, 1u);
  EXPECT_TRUE(hs.complete);
  // The final role is the one the connection was created with.
  EXPECT_EQ(hs.role, PeerRole::kServer);
  EXPECT_EQ(reg.counter("conn/collisions"), 1);
  EXPECT_EQ(reg.counter("conn/reply_resends"), 1);
  EXPECT_EQ(reg.counter("conn/requests_held"), 1);
}

TEST(ConnectionTimeline, IncompleteHandshakeStaysOpen) {
  ConnectionTimeline timeline;
  timeline.on_event(phase_change(1, 2, PeerPhase::kIdle,
                                 PeerPhase::kRequesting, PeerRole::kClient,
                                 10));
  timeline.finish(500);
  ASSERT_EQ(timeline.handshakes().size(), 1u);
  EXPECT_FALSE(timeline.handshakes()[0].complete);
  ASSERT_EQ(timeline.intervals().size(), 1u);
  EXPECT_FALSE(timeline.intervals()[0].closed);
  EXPECT_EQ(timeline.intervals()[0].end, 500u);
}

TEST(ConnectionTimeline, DrainingReconnectOpensSecondHandshake) {
  ConnectionTimeline timeline;
  timeline.on_event(phase_change(0, 1, PeerPhase::kIdle,
                                 PeerPhase::kEstablishing, PeerRole::kServer,
                                 10));
  timeline.on_event(phase_change(0, 1, PeerPhase::kEstablishing,
                                 PeerPhase::kConnected, PeerRole::kServer,
                                 20));
  timeline.on_event(phase_change(0, 1, PeerPhase::kConnected,
                                 PeerPhase::kDraining, PeerRole::kServer,
                                 30));
  // Peer's new request doubles as the drain ack: a fresh establishment.
  timeline.on_event(phase_change(0, 1, PeerPhase::kDraining,
                                 PeerPhase::kEstablishing, PeerRole::kServer,
                                 40));
  timeline.on_event(phase_change(0, 1, PeerPhase::kEstablishing,
                                 PeerPhase::kConnected, PeerRole::kServer,
                                 50));
  timeline.finish(100);
  ASSERT_EQ(timeline.handshakes().size(), 2u);
  EXPECT_TRUE(timeline.handshakes()[0].complete);
  EXPECT_TRUE(timeline.handshakes()[1].complete);
  EXPECT_EQ(timeline.handshakes()[1].start, 40u);
  EXPECT_EQ(timeline.handshakes()[1].established, 50u);
}

TEST(ConnectionTimeline, PairsAreIndependent) {
  ConnectionTimeline timeline;
  timeline.on_event(phase_change(0, 1, PeerPhase::kIdle,
                                 PeerPhase::kRequesting, PeerRole::kClient,
                                 10));
  timeline.on_event(phase_change(1, 0, PeerPhase::kIdle,
                                 PeerPhase::kEstablishing, PeerRole::kServer,
                                 15));
  timeline.on_event(note(ProtocolEvent::Kind::kRetransmit, 0, 1, 20, 1));
  timeline.finish(100);
  ASSERT_EQ(timeline.handshakes().size(), 2u);
  // The retransmit annotated 0→1, not 1→0.
  EXPECT_EQ(timeline.handshakes()[0].retransmits, 1u);
  EXPECT_EQ(timeline.handshakes()[1].retransmits, 0u);
}

}  // namespace
}  // namespace odcm::telemetry
