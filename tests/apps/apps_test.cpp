// End-to-end tests for the application kernels: every kernel must verify
// its own data movement / reference solution under both designs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/ep.hpp"
#include "apps/graph500.hpp"
#include "apps/grid_kernel.hpp"
#include "apps/heat2d.hpp"
#include "apps/hello.hpp"
#include "apps/mg.hpp"
#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::apps {
namespace {

shmem::ShmemJobConfig job_config(std::uint32_t ranks, std::uint32_t ppn,
                                 core::ConduitConfig conduit =
                                     core::proposed_design()) {
  shmem::ShmemJobConfig config;
  config.job.ranks = ranks;
  config.job.ranks_per_node = ppn;
  config.job.conduit = conduit;
  config.shmem.heap_bytes = 1 << 20;
  config.shmem.shared_memory_base = 100 * sim::usec;
  config.shmem.shared_memory_per_pe = 10 * sim::usec;
  config.shmem.init_misc = 50 * sim::usec;
  return config;
}

/// Run a SHMEM-only kernel on every PE; returns per-PE results.
template <typename Fn>
std::vector<KernelResult> run_kernel(std::uint32_t ranks, std::uint32_t ppn,
                                     Fn kernel,
                                     core::ConduitConfig conduit =
                                         core::proposed_design()) {
  sim::Engine engine;
  shmem::ShmemJob job(engine, job_config(ranks, ppn, conduit));
  std::vector<KernelResult> results(ranks);
  job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await kernel(pe, results[pe.rank()]);
    co_await pe.finalize();
  });
  engine.run();
  return results;
}

void expect_all_verified(const std::vector<KernelResult>& results) {
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_TRUE(results[r].verified) << "rank " << r << ": "
                                     << results[r].error;
  }
}

TEST(Hello, RunsUnderBothDesigns) {
  for (auto conduit : {core::proposed_design(), core::current_design()}) {
    sim::Engine engine;
    shmem::ShmemJob job(engine, job_config(8, 4, conduit));
    job.spawn_all([](shmem::ShmemPe& pe) -> sim::Task<> {
      co_await hello_pe(pe, HelloParams{});
    });
    engine.run();
  }
}

TEST(Heat2d, VerifiesAgainstSerialReference) {
  for (std::uint32_t ranks : {1u, 4u, 6u}) {
    Heat2dParams params;
    params.global_n = 24;
    params.iters = 12;
    auto results = run_kernel(
        ranks, 2,
        [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
          co_await heat2d_pe(pe, params, out);
        });
    expect_all_verified(results);
  }
}

TEST(Heat2d, VerifiesUnderStaticDesign) {
  Heat2dParams params;
  params.global_n = 16;
  params.iters = 9;  // odd iteration count exercises buffer flip
  auto results = run_kernel(
      4, 2,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await heat2d_pe(pe, params, out);
      },
      core::current_design());
  expect_all_verified(results);
}

TEST(Ep, LcgSeekMatchesSequential) {
  // ep_reference(a, n) ++ ep_reference(a+n, m) must equal
  // ep_reference(a, n+m).
  EpCounts whole = ep_reference(0, 1000);
  EpCounts first = ep_reference(0, 400);
  EpCounts second = ep_reference(400, 600);
  EXPECT_EQ(whole.accepted, first.accepted + second.accepted);
  for (std::size_t b = 0; b < whole.bins.size(); ++b) {
    EXPECT_EQ(whole.bins[b], first.bins[b] + second.bins[b]);
  }
  EXPECT_NEAR(whole.sx, first.sx + second.sx, 1e-9);
}

TEST(Ep, AcceptanceRateIsPlausible) {
  // Marsaglia polar accepts ~ pi/4 of pairs.
  EpCounts counts = ep_reference(0, 100000);
  double rate = static_cast<double>(counts.accepted) / 100000.0;
  EXPECT_NEAR(rate, 0.785, 0.01);
}

TEST(Ep, ParallelMatchesSerial) {
  for (std::uint32_t ranks : {1u, 4u, 8u}) {
    EpParams params;
    params.log2_pairs = 14;
    auto results = run_kernel(
        ranks, 4,
        [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
          co_await ep_pe(pe, params, out);
        });
    expect_all_verified(results);
  }
}

TEST(GridKernel, BtHalosVerify) {
  GridKernelParams params = bt_params();
  params.iters = 6;
  params.face_elems = 32;
  for (std::uint32_t ranks : {4u, 16u}) {
    auto results = run_kernel(
        ranks, 4,
        [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
          co_await grid_kernel_pe(pe, params, out);
        });
    expect_all_verified(results);
  }
}

TEST(GridKernel, SpHalosVerifyUnderStatic) {
  GridKernelParams params = sp_params();
  params.iters = 6;
  params.face_elems = 16;
  auto results = run_kernel(
      8, 4,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await grid_kernel_pe(pe, params, out);
      },
      core::current_design());
  expect_all_verified(results);
}

TEST(GridKernel, NonSquareGridWorks) {
  GridKernelParams params = bt_params();
  params.iters = 4;
  params.face_elems = 8;
  auto results = run_kernel(
      6, 3,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await grid_kernel_pe(pe, params, out);
      });
  expect_all_verified(results);
}

TEST(Mg, HalosVerifyOn3dGrids) {
  MgParams params;
  params.vcycles = 3;
  params.levels = 3;
  params.finest_face_elems = 64;
  for (std::uint32_t ranks : {4u, 8u}) {
    auto results = run_kernel(
        ranks, 4,
        [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
          co_await mg_pe(pe, params, out);
        });
    expect_all_verified(results);
  }
}

TEST(PeerCounts, EpTalksToFewerPeersThanBt) {
  // Table I's qualitative ordering at equal PE count.
  auto peers_of = [](auto kernel_factory) {
    sim::Engine engine;
    shmem::ShmemJob job(engine, job_config(16, 4));
    std::vector<KernelResult> results(16);
    job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
      co_await pe.start_pes();
      co_await kernel_factory(pe, results[pe.rank()]);
      co_await pe.finalize();
    });
    engine.run();
    double total = 0;
    for (RankId r = 0; r < 16; ++r) {
      total += static_cast<double>(job.pe(r).communicating_peers());
    }
    return total / 16.0;
  };
  EpParams ep;
  ep.log2_pairs = 10;
  GridKernelParams bt = bt_params();
  bt.iters = 3;
  bt.face_elems = 8;
  double ep_peers = peers_of(
      [ep](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await ep_pe(pe, ep, out);
      });
  double bt_peers = peers_of(
      [bt](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await grid_kernel_pe(pe, bt, out);
      });
  EXPECT_LT(ep_peers, bt_peers);
  EXPECT_LT(bt_peers, 16.0);  // far from all-to-all
}

struct HybridEnv {
  explicit HybridEnv(std::uint32_t ranks, std::uint32_t ppn)
      : job(engine, job_config(ranks, ppn)) {
    for (RankId r = 0; r < ranks; ++r) {
      comms.push_back(
          std::make_unique<mpi::MpiComm>(job.conduit_job().conduit(r)));
    }
  }
  sim::Engine engine;
  shmem::ShmemJob job;
  std::vector<std::unique_ptr<mpi::MpiComm>> comms;
};

TEST(Graph500, HybridBfsValidates) {
  for (std::uint32_t ranks : {2u, 4u, 8u}) {
    HybridEnv env(ranks, 2);
    Graph500Params params;
    params.vertices = 128;
    params.edges = 512;
    std::vector<KernelResult> results(ranks);
    env.job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
      co_await pe.start_pes();
      co_await graph500_pe(pe, *env.comms[pe.rank()], params,
                           results[pe.rank()]);
      co_await pe.finalize();
    });
    env.engine.run();
    expect_all_verified(results);
  }
}

TEST(Graph500, PaperScaleGraphValidates) {
  // The paper's evaluation graph: 1,024 vertices and 16,384 edges.
  HybridEnv env(8, 4);
  Graph500Params params;  // defaults match the paper
  std::vector<KernelResult> results(8);
  env.job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await graph500_pe(pe, *env.comms[pe.rank()], params,
                         results[pe.rank()]);
    co_await pe.finalize();
  });
  env.engine.run();
  expect_all_verified(results);
}

TEST(Graph500, DisconnectedGraphHandled) {
  HybridEnv env(4, 2);
  Graph500Params params;
  params.vertices = 64;
  params.edges = 20;  // sparse: most vertices unreachable
  std::vector<KernelResult> results(4);
  env.job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await graph500_pe(pe, *env.comms[pe.rank()], params,
                         results[pe.rank()]);
    co_await pe.finalize();
  });
  env.engine.run();
  expect_all_verified(results);
}

TEST(Determinism, KernelsReproducible) {
  auto run_once = [] {
    Heat2dParams params;
    params.global_n = 16;
    params.iters = 8;
    sim::Engine engine;
    shmem::ShmemJob job(engine, job_config(4, 2));
    std::vector<KernelResult> results(4);
    job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
      co_await pe.start_pes();
      co_await heat2d_pe(pe, params, results[pe.rank()]);
      co_await pe.finalize();
    });
    engine.run();
    return engine.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace odcm::apps
