// Tests for the hybrid MPI+OpenSHMEM sample sort (paper ref. [6]).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "apps/sort.hpp"
#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::apps {
namespace {

struct HybridEnv {
  HybridEnv(std::uint32_t ranks, std::uint32_t ppn, std::uint64_t heap) {
    shmem::ShmemJobConfig config;
    config.job.ranks = ranks;
    config.job.ranks_per_node = ppn;
    config.shmem.heap_bytes = heap;
    config.shmem.shared_memory_base = 100 * sim::usec;
    config.shmem.shared_memory_per_pe = 10 * sim::usec;
    config.shmem.init_misc = 50 * sim::usec;
    job = std::make_unique<shmem::ShmemJob>(engine, config);
    for (shmem::RankId r = 0; r < ranks; ++r) {
      comms.push_back(
          std::make_unique<mpi::MpiComm>(job->conduit_job().conduit(r)));
    }
  }

  std::vector<KernelResult> run(SortParams params) {
    std::vector<KernelResult> results(comms.size());
    job->spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
      co_await pe.start_pes();
      co_await sample_sort_pe(pe, *comms[pe.rank()], params,
                              results[pe.rank()]);
      co_await pe.finalize();
    });
    engine.run();
    return results;
  }

  sim::Engine engine;
  std::unique_ptr<shmem::ShmemJob> job;
  std::vector<std::unique_ptr<mpi::MpiComm>> comms;
};

void expect_verified(const std::vector<KernelResult>& results) {
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_TRUE(results[r].verified)
        << "rank " << r << ": " << results[r].error;
  }
}

TEST(SampleSort, SortsAcrossFourPes) {
  HybridEnv env(4, 2, 1 << 20);
  SortParams params;
  params.keys_per_pe = 200;
  expect_verified(env.run(params));
}

TEST(SampleSort, SinglePeDegenerate) {
  HybridEnv env(1, 1, 1 << 20);
  SortParams params;
  params.keys_per_pe = 64;
  expect_verified(env.run(params));
}

TEST(SampleSort, TinyKeyCountsWithManyPes) {
  // Fewer keys per PE than PEs: some buckets will be empty.
  HybridEnv env(12, 4, 1 << 20);
  SortParams params;
  params.keys_per_pe = 3;
  expect_verified(env.run(params));
}

using Shape = std::tuple<std::uint32_t /*ranks*/, std::uint32_t /*keys*/,
                         std::uint64_t /*seed*/>;

class SortSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(SortSweep, VerifiesAcrossShapesAndSeeds) {
  auto [ranks, keys, seed] = GetParam();
  HybridEnv env(ranks, 4, 2ULL << 20);
  SortParams params;
  params.keys_per_pe = keys;
  params.seed = seed;
  expect_verified(env.run(params));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortSweep,
    ::testing::Values(Shape{2, 100, 1}, Shape{3, 333, 2}, Shape{6, 128, 3},
                      Shape{8, 500, 4}, Shape{8, 1, 5}, Shape{5, 77, 6},
                      Shape{16, 64, 7}));

}  // namespace
}  // namespace odcm::apps
