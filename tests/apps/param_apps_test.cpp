// Parameterized verification sweeps for the application kernels: every
// kernel must verify at every job geometry under both designs.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "apps/ep.hpp"
#include "apps/graph500.hpp"
#include "apps/grid_kernel.hpp"
#include "apps/heat2d.hpp"
#include "apps/mg.hpp"
#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::apps {
namespace {

shmem::ShmemJobConfig job_config(std::uint32_t ranks, std::uint32_t ppn,
                                 bool use_static) {
  shmem::ShmemJobConfig config;
  config.job.ranks = ranks;
  config.job.ranks_per_node = ppn;
  config.job.conduit =
      use_static ? core::current_design() : core::proposed_design();
  config.shmem.heap_bytes = 1 << 20;
  config.shmem.shared_memory_base = 100 * sim::usec;
  config.shmem.shared_memory_per_pe = 10 * sim::usec;
  config.shmem.init_misc = 50 * sim::usec;
  return config;
}

template <typename Fn>
std::vector<KernelResult> run_kernel(std::uint32_t ranks, std::uint32_t ppn,
                                     bool use_static, Fn kernel) {
  sim::Engine engine;
  shmem::ShmemJob job(engine, job_config(ranks, ppn, use_static));
  std::vector<KernelResult> results(ranks);
  job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await kernel(pe, results[pe.rank()]);
    co_await pe.finalize();
  });
  engine.run();
  return results;
}

void expect_verified(const std::vector<KernelResult>& results) {
  for (std::size_t r = 0; r < results.size(); ++r) {
    EXPECT_TRUE(results[r].verified)
        << "rank " << r << ": " << results[r].error;
  }
}

using Shape = std::tuple<std::uint32_t /*ranks*/, std::uint32_t /*ppn*/,
                         bool /*static design*/>;

class KernelShapes : public ::testing::TestWithParam<Shape> {};

TEST_P(KernelShapes, Heat2dVerifies) {
  auto [ranks, ppn, use_static] = GetParam();
  Heat2dParams params;
  params.global_n = 30;
  params.iters = 7;
  expect_verified(run_kernel(
      ranks, ppn, use_static,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await heat2d_pe(pe, params, out);
      }));
}

TEST_P(KernelShapes, EpVerifies) {
  auto [ranks, ppn, use_static] = GetParam();
  EpParams params;
  params.log2_pairs = 12;
  expect_verified(run_kernel(
      ranks, ppn, use_static,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await ep_pe(pe, params, out);
      }));
}

TEST_P(KernelShapes, GridKernelHalosVerify) {
  auto [ranks, ppn, use_static] = GetParam();
  GridKernelParams params = bt_params();
  params.iters = 4;
  params.face_elems = 16;
  expect_verified(run_kernel(
      ranks, ppn, use_static,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await grid_kernel_pe(pe, params, out);
      }));
}

TEST_P(KernelShapes, MgHalosVerify) {
  auto [ranks, ppn, use_static] = GetParam();
  MgParams params;
  params.vcycles = 2;
  params.levels = 3;
  params.finest_face_elems = 32;
  expect_verified(run_kernel(
      ranks, ppn, use_static,
      [params](shmem::ShmemPe& pe, KernelResult& out) -> sim::Task<> {
        co_await mg_pe(pe, params, out);
      }));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KernelShapes,
    ::testing::Values(Shape{2, 2, false}, Shape{4, 2, false},
                      Shape{6, 3, false}, Shape{8, 4, false},
                      Shape{12, 4, false}, Shape{16, 8, false},
                      Shape{4, 2, true}, Shape{9, 3, false},
                      Shape{8, 8, true}));

class Graph500Shapes : public ::testing::TestWithParam<Shape> {};

TEST_P(Graph500Shapes, BfsValidates) {
  auto [ranks, ppn, use_static] = GetParam();
  sim::Engine engine;
  shmem::ShmemJob job(engine, job_config(ranks, ppn, use_static));
  std::vector<std::unique_ptr<mpi::MpiComm>> comms;
  for (shmem::RankId r = 0; r < ranks; ++r) {
    comms.push_back(
        std::make_unique<mpi::MpiComm>(job.conduit_job().conduit(r)));
  }
  Graph500Params params;
  params.vertices = 192;
  params.edges = 960;
  std::vector<KernelResult> results(ranks);
  job.spawn_all([&](shmem::ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await graph500_pe(pe, *comms[pe.rank()], params, results[pe.rank()]);
    co_await pe.finalize();
  });
  engine.run();
  expect_verified(results);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Graph500Shapes,
    ::testing::Values(Shape{2, 1, false}, Shape{3, 3, false},
                      Shape{6, 2, false}, Shape{8, 4, true},
                      Shape{12, 4, false}));

// EP's seekable generator: chunked evaluation must be independent of the
// chunking (associativity of the partition).
class EpChunking : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EpChunking, PartitionInvariant) {
  const std::uint32_t chunks = GetParam();
  const std::uint64_t total = 5000;
  EpCounts whole = ep_reference(0, total);
  EpCounts summed;
  std::uint64_t start = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    std::uint64_t count = total / chunks + (c < total % chunks ? 1 : 0);
    EpCounts part = ep_reference(start, count);
    for (std::size_t b = 0; b < summed.bins.size(); ++b) {
      summed.bins[b] += part.bins[b];
    }
    summed.accepted += part.accepted;
    summed.sx += part.sx;
    summed.sy += part.sy;
    start += count;
  }
  EXPECT_EQ(summed.accepted, whole.accepted);
  for (std::size_t b = 0; b < whole.bins.size(); ++b) {
    EXPECT_EQ(summed.bins[b], whole.bins[b]);
  }
  EXPECT_NEAR(summed.sx, whole.sx, 1e-7);
  EXPECT_NEAR(summed.sy, whole.sy, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Chunks, EpChunking,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31));

}  // namespace
}  // namespace odcm::apps
