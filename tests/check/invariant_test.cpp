// Unit tests for the protocol invariant checker: the legality table, the
// observer-mirror cross-check, and end-to-end operation on real jobs.
#include <gtest/gtest.h>

#include <vector>

#include "check/invariants.hpp"
#include "sim/engine.hpp"

namespace odcm::check {
namespace {

using core::PeerPhase;
using core::PeerRole;
using core::ProtocolEvent;

ProtocolEvent phase_event(fabric::RankId self, fabric::RankId peer,
                          PeerPhase from, PeerPhase to,
                          PeerRole role = PeerRole::kClient) {
  ProtocolEvent event;
  event.kind = ProtocolEvent::Kind::kPhaseChange;
  event.self = self;
  event.peer = peer;
  event.from = from;
  event.to = to;
  event.role = role;
  return event;
}

ProtocolEvent simple(ProtocolEvent::Kind kind, fabric::RankId self,
                     fabric::RankId peer) {
  ProtocolEvent event;
  event.kind = kind;
  event.self = self;
  event.peer = peer;
  return event;
}

TEST(InvariantChecker, AcceptsTheCanonicalClientPath) {
  InvariantChecker checker;
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kRequesting));
  checker.on_event(phase_event(0, 1, PeerPhase::kRequesting,
                               PeerPhase::kEstablishing));
  checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1));
  checker.on_event(phase_event(0, 1, PeerPhase::kEstablishing,
                               PeerPhase::kConnected));
  EXPECT_EQ(checker.events_seen(), 4u);
}

TEST(InvariantChecker, RejectsIllegalTransition) {
  InvariantChecker checker;
  checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1));
  EXPECT_THROW(checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                                            PeerPhase::kConnected,
                                            PeerRole::kClient)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsUnobservedMutation) {
  // The event claims the conduit was in kRequesting but the observer never
  // saw it leave kIdle: some code path mutated the phase directly.
  InvariantChecker checker;
  EXPECT_THROW(checker.on_event(phase_event(0, 1, PeerPhase::kRequesting,
                                            PeerPhase::kEstablishing)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsConnectedWithoutQp) {
  InvariantChecker checker;
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kEstablishing,
                               PeerRole::kServer));
  EXPECT_THROW(checker.on_event(phase_event(0, 1, PeerPhase::kEstablishing,
                                            PeerPhase::kConnected,
                                            PeerRole::kServer)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsConnectedBeforePayloadWhenExpected) {
  InvariantChecker::Options options;
  options.payloads_expected = true;
  InvariantChecker checker(options);
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kEstablishing,
                               PeerRole::kServer));
  checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1));
  EXPECT_THROW(checker.on_event(phase_event(0, 1, PeerPhase::kEstablishing,
                                            PeerPhase::kConnected,
                                            PeerRole::kServer)),
               InvariantViolation);
}

TEST(InvariantChecker, AcceptsConnectedAfterPayload) {
  InvariantChecker::Options options;
  options.payloads_expected = true;
  InvariantChecker checker(options);
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kEstablishing,
                               PeerRole::kServer));
  checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1));
  checker.on_event(simple(ProtocolEvent::Kind::kPayloadInstalled, 0, 1));
  checker.on_event(phase_event(0, 1, PeerPhase::kEstablishing,
                               PeerPhase::kConnected, PeerRole::kServer));
}

TEST(InvariantChecker, RejectsRetransmitOverBudget) {
  InvariantChecker::Options options;
  options.max_retries = 4;
  InvariantChecker checker(options);
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kRequesting));
  ProtocolEvent retransmit = simple(ProtocolEvent::Kind::kRetransmit, 0, 1);
  retransmit.attempt = 4;
  checker.on_event(retransmit);
  retransmit.attempt = 5;
  EXPECT_THROW(checker.on_event(retransmit), InvariantViolation);
}

TEST(InvariantChecker, RejectsCollisionWonByHigherRank) {
  InvariantChecker checker;
  checker.on_event(phase_event(3, 5, PeerPhase::kIdle,
                               PeerPhase::kRequesting));
  // Rank 3 absorbing a collision with rank 5 means the higher rank's
  // request won: the deterministic tie-break is broken.
  EXPECT_THROW(checker.on_event(simple(ProtocolEvent::Kind::kCollision, 3, 5)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsDoubleQpBind) {
  InvariantChecker checker;
  checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1));
  EXPECT_THROW(checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsRmaTowardUnconnectedPeer) {
  InvariantChecker checker;
  EXPECT_THROW(
      checker.on_event(simple(ProtocolEvent::Kind::kRdmaIssued, 0, 1)),
      InvariantViolation);
}

TEST(InvariantChecker, ViolationReportCarriesHistory) {
  InvariantChecker checker;
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kRequesting));
  try {
    checker.on_event(simple(ProtocolEvent::Kind::kRdmaIssued, 0, 1));
    FAIL() << "expected InvariantViolation";
  } catch (const InvariantViolation& violation) {
    std::string what = violation.what();
    EXPECT_NE(what.find("recent events"), std::string::npos) << what;
    EXPECT_NE(what.find("Idle->Requesting"), std::string::npos) << what;
  }
}

TEST(InvariantChecker, ShmIssuedToSameNodePeerNeedsNoConnection) {
  // Regression (transport selection): with the shm transport enabled,
  // same-node pairs legitimately produce ZERO connection events — a shm op
  // with no preceding handshake must be legal.
  InvariantChecker::Options options;
  options.intranode_shm = true;
  options.ranks_per_node = 4;
  InvariantChecker checker(options);
  checker.on_event(simple(ProtocolEvent::Kind::kShmIssued, 0, 1));
  checker.on_event(simple(ProtocolEvent::Kind::kShmIssued, 3, 0));
  EXPECT_EQ(checker.events_seen(), 2u);
}

TEST(InvariantChecker, RejectsShmIssuedAcrossNodes) {
  InvariantChecker::Options options;
  options.intranode_shm = true;
  options.ranks_per_node = 4;
  InvariantChecker checker(options);
  // Ranks 0 and 5 live on different nodes: shared memory cannot reach.
  EXPECT_THROW(
      checker.on_event(simple(ProtocolEvent::Kind::kShmIssued, 0, 5)),
      InvariantViolation);
}

TEST(InvariantChecker, RejectsShmIssuedWhenShmDisabled) {
  InvariantChecker checker;
  EXPECT_THROW(
      checker.on_event(simple(ProtocolEvent::Kind::kShmIssued, 0, 1)),
      InvariantViolation);
}

TEST(InvariantChecker, RejectsRcRmaTowardSameNodePeerUnderShm) {
  // A connection to a same-node peer may exist (static mode still builds
  // the full mesh), but routing RC RMA over it bypasses transport
  // selection.
  InvariantChecker::Options options;
  options.intranode_shm = true;
  options.ranks_per_node = 4;
  InvariantChecker checker(options);
  checker.on_event(phase_event(0, 1, PeerPhase::kIdle,
                               PeerPhase::kRequesting));
  checker.on_event(phase_event(0, 1, PeerPhase::kRequesting,
                               PeerPhase::kEstablishing));
  checker.on_event(simple(ProtocolEvent::Kind::kQpBound, 0, 1));
  checker.on_event(phase_event(0, 1, PeerPhase::kEstablishing,
                               PeerPhase::kConnected));
  EXPECT_THROW(
      checker.on_event(simple(ProtocolEvent::Kind::kRdmaIssued, 0, 1)),
      InvariantViolation);
}

// ---- registration invariants (on-demand memory registration) ----

ProtocolEvent reg_event(ProtocolEvent::Kind kind, fabric::RankId self,
                        fabric::RankId peer, std::uint32_t chunk,
                        std::uint64_t rkey) {
  ProtocolEvent event;
  event.kind = kind;
  event.self = self;
  event.peer = peer;
  event.attempt = chunk;
  event.detail = rkey;
  return event;
}

InvariantChecker::Options reg_options(std::uint64_t cap = 0) {
  InvariantChecker::Options options;
  options.reg_chunk_bytes = 8192;
  options.reg_pinned_max_bytes = cap;
  return options;
}

TEST(InvariantChecker, RejectsRegEventsWhenNotConfigured) {
  InvariantChecker checker;  // reg_chunk_bytes == 0
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsSeededUseAfterInvalidationAck) {
  // The acceptance scenario: target 1 pins chunk 2 under rkey 50, the
  // initiator 0 acknowledges its invalidation, and then a (seeded-buggy)
  // initiator uses the dead rkey anyway. The checker must reject the use
  // even though the target has not deregistered yet.
  InvariantChecker checker(reg_options());
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkEvicted, 1, 1, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegRkeyInvalidated, 0, 1, 2, 50));
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegRkeyUsed, 0, 1, 2, 50)),
               InvariantViolation);
}

TEST(InvariantChecker, AcceptsUseDuringDrainByUnackedSharer) {
  // A *different* initiator that has not acked yet may legally keep using
  // the rkey while the drain is in flight — the target holds the
  // registration until every sharer acked.
  InvariantChecker checker(reg_options());
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkEvicted, 1, 1, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegRkeyInvalidated, 0, 1, 2, 50));
  // Initiator 3 never saw (or never acked) the notice: still legal.
  checker.on_event(reg_event(ProtocolEvent::Kind::kRegRkeyUsed, 3, 1, 2, 50));
  EXPECT_EQ(checker.events_seen(), 4u);
}

TEST(InvariantChecker, RejectsUseOfUnregisteredRkey) {
  InvariantChecker checker(reg_options());
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegRkeyUsed, 0, 1, 2, 50)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsUseAfterDeregistration) {
  InvariantChecker checker(reg_options());
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkEvicted, 1, 1, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkDeregistered, 1, 1, 2, 50));
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegRkeyUsed, 0, 1, 2, 50)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsGrantOfUnpinnedRkey) {
  InvariantChecker checker(reg_options());
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegFaultServed, 0, 1, 2, 50)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsRkeyReuseAndDoublePin) {
  InvariantChecker checker(reg_options());
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  // Same rkey again (rkeys are never reused per HCA).
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 3, 50)),
               InvariantViolation);
  // Same chunk under a second rkey while still live.
  InvariantChecker checker2(reg_options());
  checker2.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  EXPECT_THROW(checker2.on_event(reg_event(
                   ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 51)),
               InvariantViolation);
}

TEST(InvariantChecker, RejectsPinOverCap) {
  // Cap of exactly one 8192-byte chunk: a second simultaneous pin must
  // blow the budget.
  InvariantChecker checker(reg_options(8192));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 0, 50));
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 1, 51)),
               InvariantViolation);
}

TEST(InvariantChecker, PartialLastChunkCountsExactBytes) {
  // Heap of 20 KiB with 8 KiB chunks: chunk 2 is only 4 KiB. With the
  // heap size configured, pinning all three chunks fits a 20 KiB cap.
  InvariantChecker::Options options = reg_options(20 * 1024);
  options.reg_heap_bytes = 20 * 1024;
  InvariantChecker checker(options);
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 0, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 1, 51));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 52));
  EXPECT_EQ(checker.events_seen(), 3u);
}

TEST(InvariantChecker, RejectsDeregWithoutEviction) {
  InvariantChecker checker(reg_options());
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  EXPECT_THROW(checker.on_event(reg_event(
                   ProtocolEvent::Kind::kRegChunkDeregistered, 1, 1, 2, 50)),
               InvariantViolation);
}

TEST(InvariantChecker, FinalAuditRejectsOpenDrain) {
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 2;
  config.ranks_per_node = 1;
  core::ConduitJob job(engine, config);

  InvariantChecker checker(reg_options());
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkPinned, 1, 0, 2, 50));
  checker.on_event(
      reg_event(ProtocolEvent::Kind::kRegChunkEvicted, 1, 1, 2, 50));
  // The eviction drain never completed: the run must not end like this.
  EXPECT_THROW(checker.check_final(job, false), InvariantViolation);
}

TEST(InvariantChecker, ShmJobPassesEndToEndWithZeroSameNodeHandshakes) {
  // End-to-end regression: an on-demand job with the shm transport sends to
  // every peer; same-node traffic never leaves Idle, cross-node traffic
  // handshakes normally, and the checker accepts the whole run.
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 6;
  config.ranks_per_node = 3;
  config.conduit = core::proposed_design();
  config.conduit.intranode_transport = core::IntranodeTransport::kShm;
  core::ConduitJob job(engine, config);
  InvariantChecker::Options options;
  options.intranode_shm = true;
  options.ranks_per_node = config.ranks_per_node;
  InvariantChecker checker(options);
  job.set_observer(&checker);

  job.spawn_all([](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [](fabric::RankId,
                              std::vector<std::byte>) -> sim::Task<> {
      co_return;
    });
    co_await c.init();
    for (fabric::RankId peer = 0; peer < 6; ++peer) {
      co_await c.am_send(peer, 20, std::vector<std::byte>(8));
    }
    co_await c.barrier_global();
  });
  engine.run();
  checker.check_final(job, /*after_teardown=*/true);
  EXPECT_GT(checker.events_seen(), 0u);
  for (fabric::RankId r = 0; r < 6; ++r) {
    for (fabric::RankId p = 0; p < 6; ++p) {
      if (r / 3 == p / 3) {
        EXPECT_EQ(job.conduit(r).peer_phase(p), core::PeerPhase::kIdle)
            << r << "->" << p;
      }
    }
  }
}

TEST(InvariantChecker, CleanJobPassesEndToEnd) {
  // Observe a real 4-rank on-demand job: no violations, and the final
  // audit (including the QP-leak check) passes.
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 4;
  config.ranks_per_node = 2;
  config.conduit = core::proposed_design();
  core::ConduitJob job(engine, config);
  InvariantChecker checker;
  job.set_observer(&checker);

  job.spawn_all([](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [](fabric::RankId,
                              std::vector<std::byte>) -> sim::Task<> {
      co_return;
    });
    co_await c.init();
    for (fabric::RankId peer = 0; peer < 4; ++peer) {
      co_await c.am_send(peer, 20, std::vector<std::byte>(8));
    }
    co_await c.barrier_global();
  });
  engine.run();
  checker.check_final(job, /*after_teardown=*/true);
  EXPECT_GT(checker.events_seen(), 0u);
}

TEST(InvariantChecker, StaticJobPassesEndToEnd) {
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 4;
  config.ranks_per_node = 2;
  config.conduit = core::current_design();
  core::ConduitJob job(engine, config);
  InvariantChecker checker;
  job.set_observer(&checker);

  job.spawn_all([](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [](fabric::RankId,
                              std::vector<std::byte>) -> sim::Task<> {
      co_return;
    });
    co_await c.init();
    co_await c.am_send((c.rank() + 1) % 4, 20, std::vector<std::byte>(8));
    co_await c.barrier_global();
  });
  engine.run();
  checker.check_final(job, /*after_teardown=*/true);
  EXPECT_GT(checker.events_seen(), 0u);
}

}  // namespace
}  // namespace odcm::check
