// Unit tests for the scriptable fault plans: rule matching, windows,
// blackouts, determinism, and the fabric hook integration (including the
// targeted drain-ack-drop scenario from the eviction protocol).
#include <gtest/gtest.h>

#include <vector>

#include "check/fault_plan.hpp"
#include "core/conduit.hpp"
#include "sim/engine.hpp"

namespace odcm::check {
namespace {

fabric::UdSendContext make_ctx(fabric::RankId src, fabric::RankId dst,
                               std::uint8_t type, sim::Time now = 0) {
  static std::vector<std::byte> payloads[3] = {
      {},
      {std::byte{1}, std::byte{0}},
      {std::byte{2}, std::byte{0}},
  };
  fabric::UdSendContext ctx;
  ctx.src_rank = src;
  ctx.dst_rank = dst;
  ctx.payload = payloads[type];
  ctx.now = now;
  return ctx;
}

TEST(FaultPlan, TargetedRuleMatchesClassAndRanks) {
  FaultPlan plan(7);
  FaultRule rule;
  rule.klass = PacketClass::kConnectRequest;
  rule.src = 2;
  rule.dst = 5;
  rule.count = 2;
  rule.drop = true;
  plan.add_rule(rule);

  // Wrong class, wrong src, wrong dst: untouched.
  EXPECT_FALSE(plan.decide(make_ctx(2, 5, /*type=*/2)).drop);
  EXPECT_FALSE(plan.decide(make_ctx(3, 5, /*type=*/1)).drop);
  EXPECT_FALSE(plan.decide(make_ctx(2, 4, /*type=*/1)).drop);
  // First two matches dropped, third passes (count window exhausted).
  EXPECT_TRUE(plan.decide(make_ctx(2, 5, /*type=*/1)).drop);
  EXPECT_TRUE(plan.decide(make_ctx(2, 5, /*type=*/1)).drop);
  EXPECT_FALSE(plan.decide(make_ctx(2, 5, /*type=*/1)).drop);
}

TEST(FaultPlan, SkipOpensTheWindowLate) {
  FaultPlan plan(7);
  FaultRule rule;
  rule.klass = PacketClass::kConnectReply;
  rule.skip = 2;
  rule.count = 1;
  rule.duplicates = 3;
  plan.add_rule(rule);

  EXPECT_EQ(plan.decide(make_ctx(0, 1, 2)).duplicates, 0u);
  EXPECT_EQ(plan.decide(make_ctx(0, 1, 2)).duplicates, 0u);
  EXPECT_EQ(plan.decide(make_ctx(0, 1, 2)).duplicates, 3u);
  EXPECT_EQ(plan.decide(make_ctx(0, 1, 2)).duplicates, 0u);
}

TEST(FaultPlan, BlackoutDropsEverythingInWindow) {
  FaultPlan plan(7);
  plan.add_blackout({1000, 2000, std::nullopt});
  EXPECT_FALSE(plan.decide(make_ctx(0, 1, 1, 999)).drop);
  EXPECT_TRUE(plan.decide(make_ctx(0, 1, 1, 1000)).drop);
  EXPECT_TRUE(plan.decide(make_ctx(0, 1, 2, 1999)).drop);
  EXPECT_FALSE(plan.decide(make_ctx(0, 1, 1, 2000)).drop);
}

TEST(FaultPlan, RankScopedBlackoutSparesOthers) {
  FaultPlan plan(7);
  plan.add_blackout({0, 1000, 3});
  EXPECT_TRUE(plan.decide(make_ctx(3, 1, 1, 500)).drop);   // src matches
  EXPECT_TRUE(plan.decide(make_ctx(0, 3, 1, 500)).drop);   // dst matches
  EXPECT_FALSE(plan.decide(make_ctx(0, 1, 1, 500)).drop);  // unrelated pair
}

TEST(FaultPlan, BackgroundNoiseIsDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.set_background(0.5, 0.3, 1000);
    std::vector<std::uint64_t> fates;
    for (int i = 0; i < 64; ++i) {
      fabric::UdFault fault = plan.decide(make_ctx(0, 1, 1));
      fates.push_back((fault.drop ? 1u : 0u) | (fault.duplicates << 1) |
                      (static_cast<std::uint64_t>(fault.extra_delay) << 8));
    }
    return fates;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(FaultPlan, RecipesAreConstructibleAndDescribable) {
  for (std::uint32_t recipe = 0; recipe < FaultPlan::kRecipeCount; ++recipe) {
    FaultPlan plan = FaultPlan::from_recipe(recipe, 99, 8);
    std::string text = plan.describe();
    EXPECT_NE(text.find(FaultPlan::recipe_name(recipe)), std::string::npos)
        << text;
  }
}

TEST(FaultPlan, HookSeesEveryUdDatagramAndPreservesDelivery) {
  // Full-stack: install a counting pass-through plan and run a small
  // handshake-heavy job; the hook must see every UD datagram the fabric
  // sends, and a fault-free plan must not change the outcome.
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 4;
  config.ranks_per_node = 2;
  config.conduit = core::proposed_design();
  core::ConduitJob job(engine, config);
  FaultPlan plan(1);  // no rules, no background: pure observer
  plan.install(job.fabric());

  std::vector<int> received(4, 0);
  job.spawn_all([&received](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [&received, &c](fabric::RankId,
                                           std::vector<std::byte>)
                               -> sim::Task<> {
      ++received[c.rank()];
      co_return;
    });
    co_await c.init();
    co_await c.am_send((c.rank() + 1) % 4, 20, std::vector<std::byte>(8));
    co_await c.barrier_global();
  });
  engine.run();

  for (int count : received) EXPECT_EQ(count, 1);
  EXPECT_GT(plan.decisions(), 0u);
  EXPECT_EQ(plan.decisions(), job.fabric().ud_datagrams_sent());
}

TEST(FaultPlan, EvictionReconnectSurvivesTargetedRequestDrops) {
  // Eviction x loss: rank 0 (cap 1) evicts its connection to rank 1, then
  // re-contacts it while a targeted rule eats the first re-establishment
  // requests. The reconnect must ride the retransmit path rather than hang
  // (the engine throws on deadlock, so a hang fails the test loudly).
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 3;
  config.ranks_per_node = 3;
  config.conduit = core::proposed_design();
  config.conduit.max_active_connections = 1;
  core::ConduitJob job(engine, config);

  FaultPlan plan(5);
  // The drain ack travels over RC, but the re-established handshake's UD
  // request can be harassed too: drop the first request 0 -> 1 after the
  // eviction to force the retransmit path on top of the drain.
  FaultRule rule;
  rule.klass = PacketClass::kConnectRequest;
  rule.src = 0;
  rule.dst = 1;
  rule.skip = 1;  // let the initial connect through
  rule.count = 2;
  rule.drop = true;
  plan.add_rule(rule);
  plan.install(job.fabric());

  std::vector<int> received(3, 0);
  job.spawn_all([&received](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [&received, &c](fabric::RankId,
                                           std::vector<std::byte>)
                               -> sim::Task<> {
      ++received[c.rank()];
      co_return;
    });
    co_await c.init();
    if (c.rank() == 0) {
      co_await c.am_send(1, 20, std::vector<std::byte>(4));
      co_await c.am_send(2, 20, std::vector<std::byte>(4));  // evicts 1
      co_await c.am_send(1, 20, std::vector<std::byte>(4));  // re-establish
    }
    co_await c.barrier_intranode();
  });
  engine.run();

  EXPECT_EQ(received[1], 2);
  EXPECT_EQ(received[2], 1);
  EXPECT_GE(job.conduit(0).stats().counter("conn_retransmits"), 1);
}

}  // namespace
}  // namespace odcm::check
