// The torture suite (ctest label: torture): multi-seed sweeps of the
// on-demand handshake under scripted fault plans, across connection modes,
// with the invariant checker attached to every run. On failure each case
// prints the exact `check_sweep` replay command.
#include <gtest/gtest.h>

#include <string>

#include "check/torture.hpp"
#include "sim/engine.hpp"

namespace odcm::check {
namespace {

/// Sweep `seeds_per_recipe` seeds over every recipe in [0, recipes) for
/// one mode; returns the number of cases run, failing the test (with
/// replay instructions) on the first violation.
std::uint32_t sweep(TortureMode mode, std::uint32_t recipes,
                    std::uint32_t seeds_per_recipe,
                    std::uint64_t seed_base) {
  std::uint32_t cases = 0;
  for (std::uint32_t recipe = 0; recipe < recipes; ++recipe) {
    for (std::uint32_t i = 0; i < seeds_per_recipe; ++i) {
      TortureCase c;
      c.seed = seed_base + i;
      c.recipe = recipe;
      c.mode = mode;
      TortureResult result = run_case(c);
      EXPECT_TRUE(result.ok)
          << "mode=" << to_string(mode)
          << " recipe=" << FaultPlan::recipe_name(recipe) << "\n"
          << result.failure;
      if (!result.ok) return cases;
      ++cases;
    }
  }
  return cases;
}

TEST(Torture, OnDemandSweep) {
  EXPECT_EQ(sweep(TortureMode::kOnDemand, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/60, /*seed_base=*/1000),
            8u * 60u);
}

TEST(Torture, EvictionCappedSweep) {
  EXPECT_EQ(sweep(TortureMode::kEvictionCapped, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/50, /*seed_base=*/2000),
            8u * 50u);
}

TEST(Torture, StaticSweep) {
  // Static mode does not use the UD control channel, but the invariant
  // checker and data-integrity audit still apply; a few recipes suffice.
  EXPECT_EQ(sweep(TortureMode::kStatic, /*recipes=*/4,
                  /*seeds_per_recipe=*/40, /*seed_base=*/3000),
            4u * 40u);
}

TEST(Torture, IntranodeShmSweep) {
  // Mixed-coherence pin: same-node traffic rides the shm transport while
  // cross-node traffic handshakes over the lossy UD channel; the
  // data-integrity audit (exact atomic sums, AM accounting) and the
  // invariant checker must hold under every fault recipe.
  EXPECT_EQ(sweep(TortureMode::kShm, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/40, /*seed_base=*/4000),
            8u * 40u);
}

TEST(Torture, IntranodeShmCarriesTrafficUnderUdLoss) {
  // The shm path must actually be exercised (not silently routed over RC)
  // even while UD ConnectRequest loss is hammering the cross-node pairs.
  TortureCase c;
  c.seed = 4242;
  c.recipe = 1;  // request_drop: UD ConnectRequest loss
  c.mode = TortureMode::kShm;
  TortureResult result = run_case(c);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.shm_ops, 0u);
  EXPECT_GT(result.ud_datagrams, 0u);  // cross-node handshakes still happen
}

TEST(Torture, MpiHybridSweep) {
  // MPI two-sided traffic (ring isend/irecv with per-round tags) layered
  // over the same on-demand conduit, under every fault recipe. Each case
  // also audits FIFO matching for back-to-back same-(src, tag) sends and
  // that every matchbox is reclaimed once drained.
  EXPECT_EQ(sweep(TortureMode::kMpiHybrid, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/30, /*seed_base=*/5000),
            8u * 30u);
}

TEST(Torture, MpiHybridCarriesTwoSidedTraffic) {
  TortureCase c;
  c.seed = 4711;
  c.recipe = 4;  // chaos_mix
  c.mode = TortureMode::kMpiHybrid;
  TortureResult result = run_case(c);
  EXPECT_TRUE(result.ok) << result.failure;
  // 2 isends per PE per round, plus whatever the collectives add.
  EXPECT_GE(result.mpi_msgs, 2ull * 6 * 4);
}

// ---- large-message tiering under faults (ctest label: bulkproto) ----

/// Like sweep(), with the bulk-protocol traffic mix (rendezvous ring
/// puts, pipelined fragment streams, read-back gets, and — in hybrid
/// mode — above-threshold tagged messages) layered on every round.
std::uint32_t bulk_sweep(TortureMode mode, std::uint32_t recipes,
                         std::uint32_t seeds_per_recipe,
                         std::uint64_t seed_base) {
  std::uint32_t cases = 0;
  for (std::uint32_t recipe = 0; recipe < recipes; ++recipe) {
    for (std::uint32_t i = 0; i < seeds_per_recipe; ++i) {
      TortureCase c;
      c.seed = seed_base + i;
      c.recipe = recipe;
      c.mode = mode;
      c.bulkproto = true;
      TortureResult result = run_case(c);
      EXPECT_TRUE(result.ok)
          << "mode=" << to_string(mode)
          << " recipe=" << FaultPlan::recipe_name(recipe) << " (bulkproto)\n"
          << result.failure;
      if (!result.ok) return cases;
      ++cases;
    }
  }
  return cases;
}

TEST(Torture, BulkprotoSweepAllRecipes) {
  // Credit/fragment conservation and the rendezvous state machine must
  // hold under every UD fault recipe, in the plain on-demand mode and the
  // two dangerous compositions: eviction-capped (a QP can be evicted
  // between a CTS and its fragment stream) and hybrid (MPI rendezvous
  // control rides the same AM channel the faults are hammering).
  EXPECT_EQ(bulk_sweep(TortureMode::kOnDemand, FaultPlan::kRecipeCount,
                       /*seeds_per_recipe=*/12, /*seed_base=*/6000),
            8u * 12u);
  EXPECT_EQ(bulk_sweep(TortureMode::kEvictionCapped, FaultPlan::kRecipeCount,
                       /*seeds_per_recipe=*/12, /*seed_base=*/6200),
            8u * 12u);
  EXPECT_EQ(bulk_sweep(TortureMode::kMpiHybrid, FaultPlan::kRecipeCount,
                       /*seeds_per_recipe=*/8, /*seed_base=*/6400),
            8u * 8u);
  EXPECT_EQ(bulk_sweep(TortureMode::kShm, FaultPlan::kRecipeCount,
                       /*seeds_per_recipe=*/8, /*seed_base=*/6600),
            8u * 8u);
  EXPECT_EQ(bulk_sweep(TortureMode::kStatic, /*recipes=*/4,
                       /*seeds_per_recipe=*/8, /*seed_base=*/6800),
            4u * 8u);
}

TEST(Torture, BulkprotoActuallyMovesFragments) {
  // Guard against the sweep silently degrading to eager-only traffic: a
  // clean bulkproto case must stream a healthy number of fragments.
  TortureCase c;
  c.seed = 6100;
  c.recipe = 0;  // clean
  c.bulkproto = true;
  TortureResult result = run_case(c);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.bulk_fragments, 0u);
}

TEST(Torture, BulkprotoEvictionMidRendezvousUnderPerturbedSchedules) {
  // The dangerous interleaving the issue calls out: a rendezvous stream
  // in flight while the connection manager evicts QPs under a 2-slot cap,
  // re-run under perturbed tie-break seeds and jitter so the
  // eviction-vs-CTS and eviction-vs-fragment races actually fire.
  const std::uint32_t recipes[] = {2, 4, 6};  // heavy_loss, chaos_mix,
                                              // reply_drop
  for (std::uint32_t recipe : recipes) {
    TortureCase base;
    base.seed = 9100 + recipe;
    base.recipe = recipe;
    base.mode = TortureMode::kEvictionCapped;
    base.bulkproto = true;
    ScheduleExploration plain = explore_schedules(base, /*schedule_seeds=*/4,
                                                  /*schedule_seed_base=*/1);
    EXPECT_TRUE(plain.ok) << "recipe=" << FaultPlan::recipe_name(recipe)
                          << " (bulkproto)\n" << plain.failure.failure
                          << "\n  replay: " << plain.replay;
    ScheduleExploration jittered = explore_schedules(
        base, /*schedule_seeds=*/2, /*schedule_seed_base=*/101,
        /*jitter=*/200);
    EXPECT_TRUE(jittered.ok)
        << "recipe=" << FaultPlan::recipe_name(recipe)
        << " (bulkproto, jittered)\n" << jittered.failure.failure
        << "\n  replay: " << jittered.replay;
  }
}

TEST(Torture, BulkprotoReplayCommandRoundTrips) {
  TortureCase c;
  c.seed = 11;
  c.bulkproto = true;
  std::string command = replay_command(c);
  EXPECT_NE(command.find("--bulkproto"), std::string::npos) << command;
}

TEST(Torture, BulkprotoCaseIsDeterministic) {
  TortureCase c;
  c.seed = 171;
  c.recipe = 4;  // chaos_mix
  c.mode = TortureMode::kEvictionCapped;
  c.bulkproto = true;
  c.schedule_seed = 3;
  TortureResult first = run_case(c);
  TortureResult second = run_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.events_seen, second.events_seen);
  EXPECT_EQ(first.bulk_fragments, second.bulk_fragments);
  EXPECT_EQ(first.fault_decisions, second.fault_decisions);
}

TEST(Torture, ReplayCommandRoundTrips) {
  TortureCase c;
  c.seed = 424242;
  c.recipe = 6;
  c.mode = TortureMode::kEvictionCapped;
  c.schedule_seed = 17;
  c.schedule_jitter = 250;
  c.inject_schedule_race_bug = true;
  std::string command = replay_command(c);
  EXPECT_NE(command.find("--seed 424242"), std::string::npos) << command;
  EXPECT_NE(command.find("--recipe 6"), std::string::npos) << command;
  EXPECT_NE(command.find("--mode 2"), std::string::npos) << command;
  EXPECT_NE(command.find("--schedule-seed 17"), std::string::npos) << command;
  EXPECT_NE(command.find("--schedule-jitter 250"), std::string::npos)
      << command;
  EXPECT_NE(command.find("--inject-schedule-bug"), std::string::npos)
      << command;
}

TEST(Torture, CaseIsDeterministic) {
  TortureCase c;
  c.seed = 77;
  c.recipe = 4;  // chaos_mix
  TortureResult first = run_case(c);
  TortureResult second = run_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.events_seen, second.events_seen);
  EXPECT_EQ(first.ud_datagrams, second.ud_datagrams);
  EXPECT_EQ(first.fault_decisions, second.fault_decisions);
  EXPECT_EQ(first.plan, second.plan);
}

TEST(Torture, InjectedDuplicateSuppressionBugIsCaughtQuickly) {
  // Acceptance criterion: a deliberately broken protocol (the server
  // treats duplicate requests for an established connection as fresh ones)
  // must be caught by the checker within 100 seeds. The reply-drop recipe
  // forces the exact trigger: the server's ConnectReply is lost, so the
  // client's RTO retransmit arrives while the server is already Connected
  // and the buggy branch re-serves it (an illegal phase transition).
  std::uint32_t caught_at = 0;
  for (std::uint32_t i = 1; i <= 100; ++i) {
    TortureCase c;
    c.seed = i;
    c.recipe = 6;  // reply_drop
    c.inject_duplicate_suppression_bug = true;
    TortureResult result = run_case(c);
    if (!result.ok) {
      caught_at = i;
      EXPECT_NE(result.failure.find("illegal transition"), std::string::npos)
          << result.failure;
      break;
    }
  }
  EXPECT_GT(caught_at, 0u)
      << "checker failed to catch the injected bug within 100 seeds";
  EXPECT_LE(caught_at, 100u);
}

TEST(Torture, ScheduleSweepAllModesClean) {
  // The tentpole sweep: every connection mode crossed with every fault
  // recipe, each base case re-run under perturbed tie-break seeds (plus a
  // jitter pass). All current protocols must hold under every explored
  // schedule; when one does not, the minimized replay line pinpoints it.
  const TortureMode modes[] = {TortureMode::kOnDemand, TortureMode::kStatic,
                               TortureMode::kEvictionCapped,
                               TortureMode::kShm, TortureMode::kMpiHybrid};
  for (TortureMode mode : modes) {
    for (std::uint32_t recipe = 0; recipe < FaultPlan::kRecipeCount;
         ++recipe) {
      TortureCase base;
      base.seed = 9000 + recipe;
      base.recipe = recipe;
      base.mode = mode;
      ScheduleExploration plain = explore_schedules(base, /*schedule_seeds=*/4,
                                                    /*schedule_seed_base=*/1);
      EXPECT_TRUE(plain.ok) << "mode=" << to_string(mode)
                            << " recipe=" << FaultPlan::recipe_name(recipe)
                            << "\n" << plain.failure.failure
                            << "\n  replay: " << plain.replay;
      ScheduleExploration jittered = explore_schedules(
          base, /*schedule_seeds=*/2, /*schedule_seed_base=*/101,
          /*jitter=*/200);
      EXPECT_TRUE(jittered.ok)
          << "mode=" << to_string(mode)
          << " recipe=" << FaultPlan::recipe_name(recipe) << " (jittered)\n"
          << jittered.failure.failure << "\n  replay: " << jittered.replay;
    }
  }
}

TEST(Torture, SeededScheduleBugFoundWithinBudget) {
  // Acceptance criterion for the explorer: a deliberately seeded
  // ordering-sensitive bug (ensure_connected trusts the established-gate
  // wakeup without re-checking the peer phase) is INVISIBLE under the
  // historical insertion order for this case, and must be flushed out
  // within a 64-schedule-seed budget.
  TortureCase base;
  base.seed = 1000;
  base.recipe = 2;  // heavy_loss: retransmissions + eviction churn
  base.mode = TortureMode::kEvictionCapped;
  base.inject_schedule_race_bug = true;

  TortureResult insertion = run_case(base);
  ASSERT_TRUE(insertion.ok)
      << "expected the seeded bug to hide under insertion order, got:\n"
      << insertion.failure;

  ScheduleExploration exploration =
      explore_schedules(base, /*schedule_seeds=*/64, /*schedule_seed_base=*/1);
  ASSERT_FALSE(exploration.ok)
      << "explorer missed the seeded ordering bug within 64 schedule seeds";
  EXPECT_LE(exploration.schedules_run, 64u);
  EXPECT_NE(exploration.failure.failure.find("seeded ordering bug"),
            std::string::npos)
      << exploration.failure.failure;
  EXPECT_NE(exploration.replay.find("--schedule-seed"), std::string::npos)
      << exploration.replay;
  EXPECT_NE(exploration.replay.find("--inject-schedule-bug"),
            std::string::npos)
      << exploration.replay;
}

TEST(Torture, PinnedIrecvMatchingOrderRegression) {
  // Regression pin for the race the exploration sweep found in MpiComm:
  // two irecvs posted for the same (src, tag) raced their detached
  // receiver tasks for the mailbox, so a perturbed tie-break order matched
  // them out of posting order (MPI's non-overtaking rule). Minimized
  // replay: clean fabric, one round, schedule seed 1. Fixed by the
  // per-(src, tag) receive chain in MpiComm::irecv.
  TortureCase c;
  c.seed = 1000;
  c.recipe = 0;  // clean: the race needs no faults, only the schedule
  c.mode = TortureMode::kMpiHybrid;
  c.rounds = 1;
  c.schedule_seed = 1;
  TortureResult result = run_case(c);
  EXPECT_TRUE(result.ok) << result.failure;
}

TEST(Torture, PerturbedCaseIsDeterministic) {
  // The replay contract: (case, schedule_seed, jitter) fully determines
  // the run, including under perturbation.
  TortureCase c;
  c.seed = 77;
  c.recipe = 4;  // chaos_mix
  c.mode = TortureMode::kEvictionCapped;
  c.schedule_seed = 13;
  c.schedule_jitter = 300;
  TortureResult first = run_case(c);
  TortureResult second = run_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.events_seen, second.events_seen);
  EXPECT_EQ(first.ud_datagrams, second.ud_datagrams);
  EXPECT_EQ(first.fault_decisions, second.fault_decisions);
}

TEST(Torture, KilledUdEndpointFailsLoudlyNotSilently) {
  // Killing the server's UD QP mid-handshake must surface as a loud,
  // deterministic error (retry budget exhausted or engine deadlock
  // detection), never as a hang or silent data loss.
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 2;
  config.ranks_per_node = 2;
  config.conduit = core::proposed_design();
  config.conduit.conn_max_retries = 8;  // keep the failing run short
  core::ConduitJob job(engine, config);

  FaultPlan plan(1);
  FaultRule kill;
  kill.klass = PacketClass::kConnectRequest;
  kill.dst = 1;
  kill.count = 1;
  kill.kill_dst_qp = true;
  plan.add_rule(kill);
  plan.install(job.fabric());

  job.spawn_all([](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [](fabric::RankId,
                              std::vector<std::byte>) -> sim::Task<> {
      co_return;
    });
    co_await c.init();
    if (c.rank() == 0) {
      co_await c.am_send(1, 20, std::vector<std::byte>(4));
    }
    co_await c.barrier_intranode();
  });
  EXPECT_THROW(engine.run(), std::runtime_error);
}

}  // namespace
}  // namespace odcm::check
