// The torture suite (ctest label: torture): multi-seed sweeps of the
// on-demand handshake under scripted fault plans, across connection modes,
// with the invariant checker attached to every run. On failure each case
// prints the exact `check_sweep` replay command.
#include <gtest/gtest.h>

#include <string>

#include "check/torture.hpp"
#include "sim/engine.hpp"

namespace odcm::check {
namespace {

/// Sweep `seeds_per_recipe` seeds over every recipe in [0, recipes) for
/// one mode; returns the number of cases run, failing the test (with
/// replay instructions) on the first violation.
std::uint32_t sweep(TortureMode mode, std::uint32_t recipes,
                    std::uint32_t seeds_per_recipe,
                    std::uint64_t seed_base) {
  std::uint32_t cases = 0;
  for (std::uint32_t recipe = 0; recipe < recipes; ++recipe) {
    for (std::uint32_t i = 0; i < seeds_per_recipe; ++i) {
      TortureCase c;
      c.seed = seed_base + i;
      c.recipe = recipe;
      c.mode = mode;
      TortureResult result = run_case(c);
      EXPECT_TRUE(result.ok)
          << "mode=" << to_string(mode)
          << " recipe=" << FaultPlan::recipe_name(recipe) << "\n"
          << result.failure;
      if (!result.ok) return cases;
      ++cases;
    }
  }
  return cases;
}

TEST(Torture, OnDemandSweep) {
  EXPECT_EQ(sweep(TortureMode::kOnDemand, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/60, /*seed_base=*/1000),
            8u * 60u);
}

TEST(Torture, EvictionCappedSweep) {
  EXPECT_EQ(sweep(TortureMode::kEvictionCapped, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/50, /*seed_base=*/2000),
            8u * 50u);
}

TEST(Torture, StaticSweep) {
  // Static mode does not use the UD control channel, but the invariant
  // checker and data-integrity audit still apply; a few recipes suffice.
  EXPECT_EQ(sweep(TortureMode::kStatic, /*recipes=*/4,
                  /*seeds_per_recipe=*/40, /*seed_base=*/3000),
            4u * 40u);
}

TEST(Torture, IntranodeShmSweep) {
  // Mixed-coherence pin: same-node traffic rides the shm transport while
  // cross-node traffic handshakes over the lossy UD channel; the
  // data-integrity audit (exact atomic sums, AM accounting) and the
  // invariant checker must hold under every fault recipe.
  EXPECT_EQ(sweep(TortureMode::kShm, FaultPlan::kRecipeCount,
                  /*seeds_per_recipe=*/40, /*seed_base=*/4000),
            8u * 40u);
}

TEST(Torture, IntranodeShmCarriesTrafficUnderUdLoss) {
  // The shm path must actually be exercised (not silently routed over RC)
  // even while UD ConnectRequest loss is hammering the cross-node pairs.
  TortureCase c;
  c.seed = 4242;
  c.recipe = 1;  // request_drop: UD ConnectRequest loss
  c.mode = TortureMode::kShm;
  TortureResult result = run_case(c);
  EXPECT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.shm_ops, 0u);
  EXPECT_GT(result.ud_datagrams, 0u);  // cross-node handshakes still happen
}

TEST(Torture, ReplayCommandRoundTrips) {
  TortureCase c;
  c.seed = 424242;
  c.recipe = 6;
  c.mode = TortureMode::kEvictionCapped;
  std::string command = replay_command(c);
  EXPECT_NE(command.find("--seed 424242"), std::string::npos) << command;
  EXPECT_NE(command.find("--recipe 6"), std::string::npos) << command;
  EXPECT_NE(command.find("--mode 2"), std::string::npos) << command;
}

TEST(Torture, CaseIsDeterministic) {
  TortureCase c;
  c.seed = 77;
  c.recipe = 4;  // chaos_mix
  TortureResult first = run_case(c);
  TortureResult second = run_case(c);
  EXPECT_TRUE(first.ok) << first.failure;
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.events_seen, second.events_seen);
  EXPECT_EQ(first.ud_datagrams, second.ud_datagrams);
  EXPECT_EQ(first.fault_decisions, second.fault_decisions);
  EXPECT_EQ(first.plan, second.plan);
}

TEST(Torture, InjectedDuplicateSuppressionBugIsCaughtQuickly) {
  // Acceptance criterion: a deliberately broken protocol (the server
  // treats duplicate requests for an established connection as fresh ones)
  // must be caught by the checker within 100 seeds. The reply-drop recipe
  // forces the exact trigger: the server's ConnectReply is lost, so the
  // client's RTO retransmit arrives while the server is already Connected
  // and the buggy branch re-serves it (an illegal phase transition).
  std::uint32_t caught_at = 0;
  for (std::uint32_t i = 1; i <= 100; ++i) {
    TortureCase c;
    c.seed = i;
    c.recipe = 6;  // reply_drop
    c.inject_duplicate_suppression_bug = true;
    TortureResult result = run_case(c);
    if (!result.ok) {
      caught_at = i;
      EXPECT_NE(result.failure.find("illegal transition"), std::string::npos)
          << result.failure;
      break;
    }
  }
  EXPECT_GT(caught_at, 0u)
      << "checker failed to catch the injected bug within 100 seeds";
  EXPECT_LE(caught_at, 100u);
}

TEST(Torture, KilledUdEndpointFailsLoudlyNotSilently) {
  // Killing the server's UD QP mid-handshake must surface as a loud,
  // deterministic error (retry budget exhausted or engine deadlock
  // detection), never as a hang or silent data loss.
  sim::Engine engine;
  core::JobConfig config;
  config.ranks = 2;
  config.ranks_per_node = 2;
  config.conduit = core::proposed_design();
  config.conduit.conn_max_retries = 8;  // keep the failing run short
  core::ConduitJob job(engine, config);

  FaultPlan plan(1);
  FaultRule kill;
  kill.klass = PacketClass::kConnectRequest;
  kill.dst = 1;
  kill.count = 1;
  kill.kill_dst_qp = true;
  plan.add_rule(kill);
  plan.install(job.fabric());

  job.spawn_all([](core::Conduit& c) -> sim::Task<> {
    c.register_handler(20, [](fabric::RankId,
                              std::vector<std::byte>) -> sim::Task<> {
      co_return;
    });
    co_await c.init();
    if (c.rank() == 0) {
      co_await c.am_send(1, 20, std::vector<std::byte>(4));
    }
    co_await c.barrier_intranode();
  });
  EXPECT_THROW(engine.run(), std::runtime_error);
}

}  // namespace
}  // namespace odcm::check
