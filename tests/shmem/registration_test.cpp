// End-to-end tests for on-demand memory registration (`registration =
// kOnDemand`): correctness of put/get/atomics through the rkey-fault
// protocol, the startup-cost shift from eager whole-heap pin-down to lazy
// per-chunk faults, handshake piggybacking of the hot-chunk table, LRU
// eviction under a tiny pin cap, and acceptance of a full run by the
// protocol invariant checker.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "check/invariants.hpp"
#include "fabric/reg/registration_cache.hpp"
#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

constexpr std::uint64_t kChunk = 8192;  // 8 chunks of the 64 KiB test heap

ShmemJobConfig on_demand_job(std::uint32_t ranks, std::uint32_t ppn,
                             std::uint64_t cap = 0) {
  ShmemJobConfig config = small_job(ranks, ppn);
  config.shmem.registration = RegistrationMode::kOnDemand;
  config.shmem.reg_chunk_bytes = kChunk;
  config.shmem.reg_pinned_max_bytes = cap;
  return config;
}

TEST(OnDemandReg, PutGetRoundTrip) {
  JobEnv env(on_demand_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(64);
    if (pe.rank() == 0) {
      std::vector<std::byte> data(64);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 3);
      }
      co_await pe.put(1, slot, data);
      std::vector<std::byte> back(64);
      co_await pe.get(1, slot, back);
      EXPECT_EQ(back, data);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint8_t>(slot + 1), 3u);
    }
  }));

  // The target registered exactly the faulted chunk, not the whole heap.
  sim::StatSet& target = env.job.pe(1).stats();
  EXPECT_EQ(target.counter("reg_chunk_misses"), 1);
  EXPECT_GT(target.phase_time("lazy_registration"), 0u);
  fabric::reg::RegistrationCache* cache = env.job.pe(1).registration_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->pinned_bytes(), kChunk);

  // The initiator faulted once; the get reused the cached rkey.
  sim::StatSet& initiator = env.job.pe(0).stats();
  EXPECT_EQ(initiator.counter("reg_rkey_misses"), 1);
  EXPECT_GE(initiator.counter("reg_rkey_hits"), 1);
}

TEST(OnDemandReg, AtomicsRoundTrip) {
  JobEnv env(on_demand_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(counter, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      std::uint64_t old = co_await pe.atomic_fetch_add(1, counter, 5);
      EXPECT_EQ(old, 0u);
      old = co_await pe.atomic_swap(1, counter, 100);
      EXPECT_EQ(old, 5u);
      old = co_await pe.atomic_compare_swap(1, counter, 100, 200);
      EXPECT_EQ(old, 100u);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(counter), 200u);
    }
  }));
}

TEST(OnDemandReg, PutSpanningChunksFaultsEach) {
  JobEnv env(on_demand_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    // One put crossing the chunk 0 / chunk 1 boundary.
    SymAddr start = kChunk - 64;
    if (pe.rank() == 0) {
      std::vector<std::byte> data(128);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(255 - i);
      }
      co_await pe.put(1, start, data);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint8_t>(start), 255u);
      EXPECT_EQ(pe.local_read<std::uint8_t>(start + 127), 128u);
    }
  }));
  EXPECT_EQ(env.job.pe(1).stats().counter("reg_chunk_misses"), 2);
  EXPECT_EQ(env.job.pe(0).stats().counter("reg_rkey_misses"), 2);
}

TEST(OnDemandReg, StartupSkipsEagerRegistrationCost) {
  auto reg_time = [](ShmemJobConfig config) {
    JobEnv env(config);
    env.run(with_init([](ShmemPe&) -> sim::Task<> { co_return; }));
    return env.job.pe(0).stats().phase_time("memory_registration");
  };
  sim::Time eager = reg_time(small_job(2, 1));
  sim::Time on_demand = reg_time(on_demand_job(2, 1));
  EXPECT_GT(eager, 0u);
  // This is the point of the subsystem: with no remote traffic, startup
  // pays zero pin-down time.
  EXPECT_EQ(on_demand, 0u);
}

TEST(OnDemandReg, HandshakePiggybackAvoidsRefault) {
  // PE 0 warms chunk 0 on PE 1; PE 2 connects to PE 1 only afterwards, so
  // the handshake's hot-chunk table hands PE 2 the chunk-0 rkey for free.
  JobEnv env(on_demand_job(3, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr flag = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(flag, 0);
    // No barrier before the signal chain: a barrier would connect
    // PE 2 <-> PE 1 before chunk 0 is pinned and defeat the piggyback.
    if (pe.rank() == 0) {
      co_await pe.put_value<std::uint64_t>(1, flag, 1);  // faults chunk 0
      co_await pe.quiet();
      co_await pe.put_value<std::uint64_t>(2, flag, 1);  // release PE 2
    } else if (pe.rank() == 2) {
      co_await pe.wait_until(flag, WaitCmp::kEq, 1);
      // First contact with PE 1: the connect handshake piggybacks PE 1's
      // hot-chunk table (chunk 0 is pinned by now). A put into chunk 1
      // triggers the connect; the follow-up into chunk 0 must hit.
      co_await pe.put_value<std::uint64_t>(1, kChunk + 16, 7);
      co_await pe.put_value<std::uint64_t>(1, flag + 8, 9);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(flag), 1u);
      EXPECT_EQ(pe.local_read<std::uint64_t>(flag + 8), 9u);
      EXPECT_EQ(pe.local_read<std::uint64_t>(kChunk + 16), 7u);
    }
  }));

  sim::StatSet& pe2 = env.job.pe(2).stats();
  EXPECT_EQ(pe2.counter("reg_rkey_misses"), 1);  // chunk 1 only
  EXPECT_GE(pe2.counter("reg_rkey_hits"), 1);    // chunk 0 via piggyback
  // PE 1 served exactly two faults: PE 0's chunk 0 and PE 2's chunk 1.
  EXPECT_EQ(env.job.pe(1).stats().counter("reg_faults_served"), 2);
}

TEST(OnDemandReg, TinyPinCapEvictsAndStaysCorrect) {
  // Cap = one chunk: every fault on a new chunk drains the previous one.
  JobEnv env(on_demand_job(2, 1, kChunk));
  constexpr int kRounds = 3;
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    if (pe.rank() == 0) {
      // Ping-pong between chunk 0 and chunk 4, forcing repeated
      // evict/re-pin cycles of both.
      for (int round = 0; round < kRounds; ++round) {
        co_await pe.put_value<std::uint64_t>(1, 0, 100 + round);
        co_await pe.put_value<std::uint64_t>(1, 4 * kChunk, 200 + round);
      }
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(0), 100u + kRounds - 1);
      EXPECT_EQ(pe.local_read<std::uint64_t>(4 * kChunk),
                200u + kRounds - 1);
    }
  }));

  sim::StatSet& target = env.job.pe(1).stats();
  EXPECT_GE(target.counter("reg_evictions"), 2 * kRounds - 2);
  EXPECT_EQ(target.counter("reg_evictions"),
            target.counter("reg_deregistrations"));
  fabric::reg::RegistrationCache* cache = env.job.pe(1).registration_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_LE(cache->pinned_highwater(), kChunk);
  // Every drain settled before finalize (quiesce ran).
  for (std::uint32_t c = 0; c < cache->chunk_count(); ++c) {
    EXPECT_NE(cache->chunk_phase(c), fabric::reg::ChunkPhase::kDraining);
    EXPECT_NE(cache->chunk_phase(c), fabric::reg::ChunkPhase::kRegistering);
  }
}

TEST(OnDemandReg, InvariantCheckerAcceptsFullRun) {
  // The checker cross-validates the whole kReg* event stream: rkey
  // liveness, pin-cap accounting, and no use after invalidation.
  ShmemJobConfig config = on_demand_job(4, 1, 2 * kChunk);
  JobEnv env(config);
  check::InvariantChecker::Options options;
  options.max_retries = config.job.conduit.conn_max_retries;
  options.payloads_expected = true;
  options.ranks_per_node = 1;
  options.reg_chunk_bytes = kChunk;
  options.reg_pinned_max_bytes = 2 * kChunk;
  options.reg_heap_bytes = config.shmem.heap_bytes;
  check::InvariantChecker checker(options);
  env.job.conduit_job().set_observer(&checker);

  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8 * 4);
    co_await pe.barrier_all();
    // All-to-all scatter across three chunks per target.
    for (RankId peer = 0; peer < pe.n_pes(); ++peer) {
      if (peer == pe.rank()) continue;
      co_await pe.put_value<std::uint64_t>(peer, slot + 8 * pe.rank(),
                                           pe.rank() + 1);
      co_await pe.put_value<std::uint64_t>(
          peer, 3 * kChunk + 8 * pe.rank(), pe.rank() + 10);
      co_await pe.atomic_inc(peer, 6 * kChunk);
    }
    co_await pe.barrier_all();
    EXPECT_EQ(pe.local_read<std::uint64_t>(6 * kChunk), 3u);
  }));

  EXPECT_GT(checker.events_seen(), 0u);
  checker.check_final(env.job.conduit_job(), true);
}

}  // namespace
}  // namespace odcm::shmem
