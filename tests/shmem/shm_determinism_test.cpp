// Determinism regression for the intra-node shm transport (ISSUE 6
// satellite): the same seed must produce a bit-identical `sim::Tracer`
// event stream and metrics snapshot with the shm transport enabled, and
// the 16-PE / 4-PPN hello run is pinned against a golden trace.
//
// The golden file lives at tests/shmem/golden/shm_hello_16pe_4ppn.csv. On
// an intentional cost-model or protocol change, the test writes the new
// trace next to the test binary as shm_hello_16pe_4ppn_actual.csv; inspect
// the diff and copy it over the golden file.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "apps/hello.hpp"
#include "shmem/job.hpp"
#include "telemetry/telemetry.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;

struct RunOutput {
  std::string trace_csv;
  std::string metrics_json;
};

RunOutput run_hello_shm() {
  core::ConduitConfig conduit = core::proposed_design();
  conduit.intranode_transport = IntranodeTransport::kShm;
  JobEnv env(small_job(16, 4, conduit));
  // Declared after `env`: ~Telemetry detaches from the job, so the session
  // must be destroyed first.
  telemetry::Telemetry session;
  env.job.conduit_job().tracer().enable();
  session.attach(env.job.conduit_job());
  env.run([](ShmemPe& pe) -> sim::Task<> {
    return apps::hello_pe(pe, apps::HelloParams{});
  });

  RunOutput out;
  std::ostringstream csv;
  env.job.conduit_job().tracer().dump_csv(csv);
  out.trace_csv = csv.str();
  std::ostringstream metrics;
  session.metrics().to_json().write(metrics, 2);
  out.metrics_json = metrics.str();
  return out;
}

TEST(ShmDeterminism, RepeatedRunsAreBitIdentical) {
  RunOutput first = run_hello_shm();
  RunOutput second = run_hello_shm();
  EXPECT_FALSE(first.trace_csv.empty());
  EXPECT_EQ(first.trace_csv, second.trace_csv);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  // The run must actually have exercised the shm transport.
  EXPECT_NE(first.trace_csv.find("shm"), std::string::npos);
}

TEST(ShmDeterminism, GoldenTrace16Pe4PpnHello) {
  RunOutput run = run_hello_shm();
  const std::string golden_path =
      std::string(ODCM_TEST_GOLDEN_DIR) + "/shm_hello_16pe_4ppn.csv";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in) << "missing golden file " << golden_path;
  std::ostringstream golden;
  golden << in.rdbuf();
  if (run.trace_csv != golden.str()) {
    const std::string actual_path = "shm_hello_16pe_4ppn_actual.csv";
    std::ofstream actual(actual_path);
    actual << run.trace_csv;
    FAIL() << "shm hello trace diverged from the golden file.\n"
           << "  golden: " << golden_path << "\n"
           << "  actual: " << actual_path << " (written by this test)\n"
           << "If the change is intentional, inspect the diff and copy the "
              "actual file over the golden one.";
  }
}

}  // namespace
}  // namespace odcm::shmem
