// Tests for the distributed lock API (shmem_set_lock / clear_lock),
// including the torture crossing: lock contention while on-demand
// connections are evicted underneath the CAS loop and the UD control
// channel drops datagrams, swept across perturbed event schedules.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/fault_plan.hpp"
#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

struct LockTortureOutcome {
  bool ok = true;
  std::string failure{};
};

/// Lock torture recipe: every PE increments a PE-0 counter under the lock
/// while `max_active_connections = 2` forces the lock-home connection in
/// and out of existence and `recipe` injects UD faults. `schedule_seed`
/// perturbs same-timestamp event order (0 = insertion order).
LockTortureOutcome run_lock_torture(std::uint32_t recipe,
                                    std::uint64_t schedule_seed) {
  constexpr std::uint32_t kRanks = 6;
  constexpr int kIters = 3;
  core::ConduitConfig conduit = core::proposed_design();
  conduit.max_active_connections = 2;  // eviction churn under the lock
  JobEnv env(small_job(kRanks, 3, conduit));
  if (schedule_seed != 0) {
    sim::SchedulePolicy policy;
    policy.tie_break = sim::SchedulePolicy::TieBreak::kSeededShuffle;
    policy.seed = schedule_seed;
    env.engine.set_schedule_policy(policy);
  }
  check::FaultPlan plan =
      check::FaultPlan::from_recipe(recipe, 91 + schedule_seed, kRanks);
  plan.install(env.job.conduit_job().fabric());

  LockTortureOutcome outcome;
  env.job.spawn_all(with_init([&outcome](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    pe.local_write<std::uint64_t>(counter, 0);
    co_await pe.barrier_all();
    for (int i = 0; i < kIters; ++i) {
      co_await pe.set_lock(lock);
      std::uint64_t value = co_await pe.get_value<std::uint64_t>(0, counter);
      co_await pe.engine().delay(3 * sim::usec);  // widen the race window
      co_await pe.put_value<std::uint64_t>(0, counter, value + 1);
      co_await pe.clear_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      std::uint64_t landed = pe.local_read<std::uint64_t>(counter);
      if (landed != kRanks * kIters) {
        outcome.failure = "lock mutual exclusion broken: counter " +
                          std::to_string(landed) + ", expected " +
                          std::to_string(kRanks * kIters);
      }
    }
  }));
  try {
    env.engine.run();
  } catch (const std::exception& error) {
    outcome.failure = error.what();
  }
  if (!outcome.failure.empty()) {
    outcome.failure += " [recipe=" +
                       std::string(check::FaultPlan::recipe_name(recipe)) +
                       " schedule_seed=" + std::to_string(schedule_seed) +
                       "]";
    outcome.ok = false;
  }
  return outcome;
}

TEST(Lock, MutualExclusionUnderContention) {
  constexpr std::uint32_t kRanks = 8;
  constexpr int kIters = 5;
  JobEnv env(small_job(kRanks, 4));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    pe.local_write<std::uint64_t>(counter, 0);
    co_await pe.barrier_all();
    for (int i = 0; i < kIters; ++i) {
      co_await pe.set_lock(lock);
      // Non-atomic read-modify-write on PE 0: only safe under the lock.
      std::uint64_t value = co_await pe.get_value<std::uint64_t>(0, counter);
      co_await pe.engine().delay(3 * sim::usec);  // widen the race window
      co_await pe.put_value<std::uint64_t>(0, counter, value + 1);
      co_await pe.clear_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(counter), kRanks * kIters);
    }
  }));
}

TEST(Lock, TestLockReportsAvailability) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      bool got = co_await pe.test_lock(lock);
      EXPECT_TRUE(got);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      bool got = co_await pe.test_lock(lock);
      EXPECT_FALSE(got);  // held by PE 0
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      co_await pe.clear_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      bool got = co_await pe.test_lock(lock);
      EXPECT_TRUE(got);
      co_await pe.clear_lock(lock);
    }
  }));
}

TEST(Lock, ClearByNonHolderThrows) {
  JobEnv env(small_job(2, 2));
  env.job.spawn_all(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      co_await pe.set_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      co_await pe.clear_lock(lock);  // not the holder
    }
    co_await pe.barrier_all();
  }));
  EXPECT_THROW(env.engine.run(), std::logic_error);
}

TEST(Lock, WorksUnderStaticDesign) {
  JobEnv env(small_job(4, 2, core::current_design()));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    co_await pe.set_lock(lock);
    co_await pe.clear_lock(lock);
    co_await pe.barrier_all();
  }));
}

TEST(Lock, MutualExclusionUnderEviction) {
  // Clean fabric, but the connection cap alone forces the lock-home
  // connection to be evicted and re-established mid-CAS-loop.
  LockTortureOutcome outcome = run_lock_torture(/*recipe=*/0,
                                                /*schedule_seed=*/0);
  EXPECT_TRUE(outcome.ok) << outcome.failure;
}

TEST(Lock, SurvivesUdLossUnderEviction) {
  // Recipes 1 (request drop), 2 (heavy loss) and 4 (chaos mix) against the
  // same capped job: lost handshakes turn into retransmissions underneath
  // set_lock's remote CAS, never into lost or duplicated increments.
  for (std::uint32_t recipe : {1u, 2u, 4u}) {
    LockTortureOutcome outcome = run_lock_torture(recipe, /*schedule_seed=*/0);
    EXPECT_TRUE(outcome.ok) << outcome.failure;
  }
}

TEST(Lock, SurvivesPerturbedSchedules) {
  // The schedule-exploration hook: the chaos recipe under several seeded
  // tie-break permutations of same-timestamp events.
  for (std::uint64_t schedule_seed : {3ull, 17ull, 51ull}) {
    LockTortureOutcome outcome = run_lock_torture(/*recipe=*/4, schedule_seed);
    EXPECT_TRUE(outcome.ok) << outcome.failure;
  }
}

TEST(Lock, BackoffKeepsRetransmitsBounded) {
  // Heavy contention must not livelock or blow up the event count.
  JobEnv env(small_job(6, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    co_await pe.set_lock(lock);
    co_await pe.engine().delay(50 * sim::usec);  // long critical section
    co_await pe.clear_lock(lock);
    co_await pe.barrier_all();
  }));
  EXPECT_LT(env.engine.events_executed(), 2'000'000u);
}

}  // namespace
}  // namespace odcm::shmem
