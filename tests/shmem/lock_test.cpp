// Tests for the distributed lock API (shmem_set_lock / clear_lock).
#include <gtest/gtest.h>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

TEST(Lock, MutualExclusionUnderContention) {
  constexpr std::uint32_t kRanks = 8;
  constexpr int kIters = 5;
  JobEnv env(small_job(kRanks, 4));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    pe.local_write<std::uint64_t>(counter, 0);
    co_await pe.barrier_all();
    for (int i = 0; i < kIters; ++i) {
      co_await pe.set_lock(lock);
      // Non-atomic read-modify-write on PE 0: only safe under the lock.
      std::uint64_t value = co_await pe.get_value<std::uint64_t>(0, counter);
      co_await pe.engine().delay(3 * sim::usec);  // widen the race window
      co_await pe.put_value<std::uint64_t>(0, counter, value + 1);
      co_await pe.clear_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(counter), kRanks * kIters);
    }
  }));
}

TEST(Lock, TestLockReportsAvailability) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      bool got = co_await pe.test_lock(lock);
      EXPECT_TRUE(got);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      bool got = co_await pe.test_lock(lock);
      EXPECT_FALSE(got);  // held by PE 0
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      co_await pe.clear_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      bool got = co_await pe.test_lock(lock);
      EXPECT_TRUE(got);
      co_await pe.clear_lock(lock);
    }
  }));
}

TEST(Lock, ClearByNonHolderThrows) {
  JobEnv env(small_job(2, 2));
  env.job.spawn_all(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      co_await pe.set_lock(lock);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      co_await pe.clear_lock(lock);  // not the holder
    }
    co_await pe.barrier_all();
  }));
  EXPECT_THROW(env.engine.run(), std::logic_error);
}

TEST(Lock, WorksUnderStaticDesign) {
  JobEnv env(small_job(4, 2, core::current_design()));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    co_await pe.set_lock(lock);
    co_await pe.clear_lock(lock);
    co_await pe.barrier_all();
  }));
}

TEST(Lock, BackoffKeepsRetransmitsBounded) {
  // Heavy contention must not livelock or blow up the event count.
  JobEnv env(small_job(6, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr lock = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(lock, 0);
    co_await pe.barrier_all();
    co_await pe.set_lock(lock);
    co_await pe.engine().delay(50 * sim::usec);  // long critical section
    co_await pe.clear_lock(lock);
    co_await pe.barrier_all();
  }));
  EXPECT_LT(env.engine.events_executed(), 2'000'000u);
}

}  // namespace
}  // namespace odcm::shmem
