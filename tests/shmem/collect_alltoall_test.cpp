// Tests for the variable-size collect and alltoall collectives, including
// parameterized sweeps over job geometry (TEST_P).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

TEST(Collect, VariableLengthsConcatenateInRankOrder) {
  constexpr std::uint32_t kRanks = 5;
  JobEnv env(small_job(kRanks, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    // Rank r contributes r+1 8-byte values, each tagged with its origin.
    std::uint32_t my_count = pe.rank() + 1;
    SymAddr src = pe.heap().allocate(8 * kRanks);
    SymAddr dest = pe.heap().allocate(8 * kRanks * (kRanks + 1) / 2);
    for (std::uint32_t e = 0; e < my_count; ++e) {
      pe.local_write<std::uint64_t>(src + 8 * e, pe.rank() * 100 + e);
    }
    co_await pe.collect(dest, src, 8 * my_count);
    std::uint64_t offset = 0;
    for (RankId r = 0; r < kRanks; ++r) {
      for (std::uint32_t e = 0; e < r + 1; ++e) {
        EXPECT_EQ(pe.local_read<std::uint64_t>(dest + 8 * (offset + e)),
                  r * 100ULL + e)
            << "rank " << pe.rank() << " block " << r << " elem " << e;
      }
      offset += r + 1;
    }
  }));
}

TEST(Collect, ZeroLengthContributionsAllowed) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    // Odd ranks contribute nothing.
    bool contribute = pe.rank() % 2 == 0;
    SymAddr src = pe.heap().allocate(8);
    SymAddr dest = pe.heap().allocate(8 * 4);
    pe.local_write<std::uint64_t>(src, 7000 + pe.rank());
    co_await pe.collect(dest, src, contribute ? 8 : 0);
    EXPECT_EQ(pe.local_read<std::uint64_t>(dest), 7000u);
    EXPECT_EQ(pe.local_read<std::uint64_t>(dest + 8), 7002u);
  }));
}

TEST(Collect, SinglePe) {
  JobEnv env(small_job(1, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(16);
    SymAddr dest = pe.heap().allocate(16);
    pe.local_write<std::uint64_t>(src, 11);
    pe.local_write<std::uint64_t>(src + 8, 22);
    co_await pe.collect(dest, src, 16);
    EXPECT_EQ(pe.local_read<std::uint64_t>(dest), 11u);
    EXPECT_EQ(pe.local_read<std::uint64_t>(dest + 8), 22u);
  }));
}

TEST(Alltoall, TransposesBlocks) {
  constexpr std::uint32_t kRanks = 6;
  JobEnv env(small_job(kRanks, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8 * kRanks);
    SymAddr dest = pe.heap().allocate(8 * kRanks);
    // Block j on rank i carries i*1000 + j.
    for (std::uint32_t j = 0; j < kRanks; ++j) {
      pe.local_write<std::uint64_t>(src + 8 * j, pe.rank() * 1000 + j);
    }
    co_await pe.alltoall(dest, src, 8);
    // After the exchange, slot i holds i*1000 + my_rank.
    for (std::uint32_t i = 0; i < kRanks; ++i) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(dest + 8 * i),
                i * 1000ULL + pe.rank());
    }
  }));
}

TEST(Alltoall, RepeatedRoundsStayCoherent) {
  constexpr std::uint32_t kRanks = 4;
  JobEnv env(small_job(kRanks, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8 * kRanks);
    SymAddr dest = pe.heap().allocate(8 * kRanks);
    for (std::uint64_t round = 0; round < 3; ++round) {
      for (std::uint32_t j = 0; j < kRanks; ++j) {
        pe.local_write<std::uint64_t>(src + 8 * j,
                                      round * 10000 + pe.rank() * 100 + j);
      }
      co_await pe.alltoall(dest, src, 8);
      for (std::uint32_t i = 0; i < kRanks; ++i) {
        EXPECT_EQ(pe.local_read<std::uint64_t>(dest + 8 * i),
                  round * 10000 + i * 100ULL + pe.rank());
      }
    }
  }));
}

// ---- parameterized geometry sweep: all collectives at many shapes ----

using Geometry = std::tuple<std::uint32_t /*ranks*/, std::uint32_t /*ppn*/,
                            std::uint32_t /*elems*/>;

class CollectiveSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(CollectiveSweep, AllCollectivesAgreeWithReference) {
  auto [ranks, ppn, elems] = GetParam();
  JobEnv env(small_job(ranks, ppn));
  env.run(with_init([ranks = ranks, elems = elems](ShmemPe& pe)
                        -> sim::Task<> {
    const std::uint32_t bytes = 8 * elems;
    SymAddr src = pe.heap().allocate(static_cast<std::uint64_t>(bytes) * ranks);
    SymAddr fc_dest =
        pe.heap().allocate(static_cast<std::uint64_t>(bytes) * ranks);
    SymAddr a2a_dest =
        pe.heap().allocate(static_cast<std::uint64_t>(bytes) * ranks);
    SymAddr red_dest = pe.heap().allocate(bytes);
    SymAddr bc_buf = pe.heap().allocate(bytes);

    // fcollect: contribute elems values f(rank, e).
    for (std::uint32_t e = 0; e < elems; ++e) {
      pe.local_write<std::uint64_t>(src + 8 * e, pe.rank() * 7919ULL + e);
    }
    co_await pe.fcollect(fc_dest, src, bytes);
    for (RankId r = 0; r < ranks; ++r) {
      for (std::uint32_t e = 0; e < elems; ++e) {
        EXPECT_EQ(pe.local_read<std::uint64_t>(
                      fc_dest + static_cast<std::uint64_t>(bytes) * r + 8 * e),
                  r * 7919ULL + e);
      }
    }

    // reduce: sum of (rank + e) over ranks.
    for (std::uint32_t e = 0; e < elems; ++e) {
      pe.local_write<std::int64_t>(src + 8 * e, pe.rank() + e);
    }
    co_await pe.reduce<std::int64_t>(red_dest, src, elems,
                                     ReduceOp::kSum);
    std::int64_t rank_sum =
        static_cast<std::int64_t>(ranks) * (ranks - 1) / 2;
    for (std::uint32_t e = 0; e < elems; ++e) {
      EXPECT_EQ(pe.local_read<std::int64_t>(red_dest + 8 * e),
                rank_sum + static_cast<std::int64_t>(e) * ranks);
    }

    // broadcast from the last rank.
    RankId root = ranks - 1;
    if (pe.rank() == root) {
      for (std::uint32_t e = 0; e < elems; ++e) {
        pe.local_write<std::uint64_t>(bc_buf + 8 * e, 31337 + e);
      }
    }
    co_await pe.broadcast(root, bc_buf, bytes);
    for (std::uint32_t e = 0; e < elems; ++e) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(bc_buf + 8 * e), 31337ULL + e);
    }

    // alltoall with one element per block.
    for (std::uint32_t j = 0; j < ranks; ++j) {
      pe.local_write<std::uint64_t>(src + 8ULL * j,
                                    pe.rank() * 4441ULL + j);
    }
    co_await pe.alltoall(a2a_dest, src, 8);
    for (std::uint32_t i = 0; i < ranks; ++i) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(a2a_dest + 8ULL * i),
                i * 4441ULL + pe.rank());
    }
  }));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectiveSweep,
    ::testing::Values(Geometry{2, 1, 1}, Geometry{3, 3, 4}, Geometry{4, 2, 8},
                      Geometry{7, 4, 2}, Geometry{8, 8, 16},
                      Geometry{12, 4, 3}, Geometry{16, 4, 1},
                      Geometry{9, 2, 5}, Geometry{5, 1, 7},
                      Geometry{24, 8, 2}));

}  // namespace
}  // namespace odcm::shmem
