// Tests for the UPC-style GlobalArray layer.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "shmem/global_array.hpp"
#include "sim/random.hpp"
#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

TEST(GlobalArray, OwnershipLayout) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    GlobalArray<std::uint64_t> array(pe, 10);
    EXPECT_EQ(array.block(), 3u);  // ceil(10/4)
    EXPECT_EQ(array.owner(0), 0u);
    EXPECT_EQ(array.owner(2), 0u);
    EXPECT_EQ(array.owner(3), 1u);
    EXPECT_EQ(array.owner(9), 3u);
    EXPECT_THROW((void)array.owner(10), std::out_of_range);
    auto [lo, hi] = array.local_range();
    EXPECT_EQ(lo, pe.rank() * 3u);
    EXPECT_EQ(hi, std::min<std::uint64_t>(10, lo + 3));
    co_await array.sync();
  }));
}

TEST(GlobalArray, RemoteReadWriteByGlobalIndex) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    GlobalArray<std::uint64_t> array(pe, 16);
    // Initialize local elements, sync, then read shifted remotely.
    auto [lo, hi] = array.local_range();
    for (std::uint64_t i = lo; i < hi; ++i) {
      array.local_set(i, i * i);
    }
    co_await array.sync();
    for (std::uint64_t k = 0; k < 16; ++k) {
      std::uint64_t i = (k + pe.rank() * 5) % 16;
      std::uint64_t value = co_await array.read(i);
      EXPECT_EQ(value, i * i);
    }
    co_await array.sync();  // nobody may write while others still read
    // Each PE writes one element it does not own.
    std::uint64_t target = (pe.rank() * array.block() + 7) % 16;
    co_await array.write(target, 5000 + target);
    co_await array.sync();
    std::uint64_t back = co_await array.read(target);
    EXPECT_EQ(back, 5000 + target);
  }));
}

TEST(GlobalArray, FetchAddAccumulates) {
  constexpr std::uint32_t kRanks = 6;
  JobEnv env(small_job(kRanks, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    GlobalArray<std::uint64_t> counters(pe, 4);
    if (pe.rank() == 0) {
      for (std::uint64_t i = 0; i < 4; ++i) {
        co_await counters.write(i, 0);
      }
    }
    co_await counters.sync();
    for (int round = 0; round < 3; ++round) {
      (void)co_await counters.fetch_add(pe.rank() % 4, 1);
    }
    co_await counters.sync();
    std::uint64_t total = 0;
    for (std::uint64_t i = 0; i < 4; ++i) {
      total += co_await counters.read(i);
    }
    EXPECT_EQ(total, kRanks * 3u);
  }));
}

TEST(GlobalArray, RangeOpsSpanOwners) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    GlobalArray<std::uint32_t> array(pe, 21);  // block 6: uneven tail
    if (pe.rank() == 0) {
      std::vector<std::uint32_t> all(21);
      for (std::uint32_t i = 0; i < 21; ++i) all[i] = 7000 + i;
      co_await array.write_range(0, all);
    }
    co_await array.sync();
    // Every PE bulk-reads a window crossing two owners.
    std::vector<std::uint32_t> window(9);
    co_await array.read_range(4, window);
    for (std::uint32_t k = 0; k < 9; ++k) {
      EXPECT_EQ(window[k], 7004 + k);
    }
  }));
}

TEST(GlobalArray, LocalAccessGuards) {
  JobEnv env(small_job(2, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    GlobalArray<std::uint64_t> array(pe, 8);
    std::uint64_t remote_index = pe.rank() == 0 ? 7 : 0;
    EXPECT_THROW((void)array.local_get(remote_index), std::logic_error);
    EXPECT_THROW(array.local_set(remote_index, 1), std::logic_error);
    co_await array.sync();
  }));
}

using Shape =
    std::tuple<std::uint32_t /*ranks*/, std::uint64_t /*elements*/>;

class GlobalArraySweep : public ::testing::TestWithParam<Shape> {};

TEST_P(GlobalArraySweep, GupsStyleRandomUpdatesConserveTotal) {
  auto [ranks, elements] = GetParam();
  JobEnv env(small_job(ranks, 2));
  env.run(with_init([elements = elements](ShmemPe& pe) -> sim::Task<> {
    GlobalArray<std::uint64_t> table(pe, elements);
    auto [lo, hi] = table.local_range();
    for (std::uint64_t i = lo; i < hi; ++i) table.local_set(i, 0);
    co_await table.sync();

    // 32 random updates per PE (deterministic per-rank stream).
    sim::Rng rng(0xF00D + pe.rank());
    for (int u = 0; u < 32; ++u) {
      (void)co_await table.fetch_add(rng.next_below(elements), 1);
    }
    co_await table.sync();

    // Conservation: total increments == ranks * 32.
    if (pe.rank() == 0) {
      std::uint64_t total = 0;
      for (std::uint64_t i = 0; i < elements; ++i) {
        total += co_await table.read(i);
      }
      EXPECT_EQ(total, static_cast<std::uint64_t>(pe.n_pes()) * 32);
    }
    co_await table.sync();
  }));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GlobalArraySweep,
                         ::testing::Values(Shape{1, 8}, Shape{2, 5},
                                           Shape{4, 64}, Shape{6, 17},
                                           Shape{8, 100}, Shape{12, 23}));

}  // namespace
}  // namespace odcm::shmem
