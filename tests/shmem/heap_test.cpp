// Tests for the symmetric-heap allocator.
#include <gtest/gtest.h>

#include "shmem/heap.hpp"

namespace odcm::shmem {
namespace {

TEST(SymmetricAllocator, SequentialOffsets) {
  SymmetricAllocator a(1024);
  EXPECT_EQ(a.allocate(8), 0u);
  EXPECT_EQ(a.allocate(8), 8u);
  EXPECT_EQ(a.allocate(16), 16u);
  EXPECT_EQ(a.used(), 32u);
}

TEST(SymmetricAllocator, DeterministicAcrossInstances) {
  // Symmetry: two PEs performing the same sequence get the same offsets.
  SymmetricAllocator a(4096);
  SymmetricAllocator b(4096);
  for (std::uint64_t size : {8u, 24u, 100u, 8u, 64u}) {
    EXPECT_EQ(a.allocate(size), b.allocate(size));
  }
}

TEST(SymmetricAllocator, AlignmentRespected) {
  SymmetricAllocator a(4096);
  (void)a.allocate(3, 1);
  EXPECT_EQ(a.allocate(8, 64), 64u);
  EXPECT_EQ(a.allocate(8, 8) % 8, 0u);
}

TEST(SymmetricAllocator, BadAlignmentThrows) {
  SymmetricAllocator a(128);
  EXPECT_THROW((void)a.allocate(8, 3), std::invalid_argument);
  EXPECT_THROW((void)a.allocate(8, 0), std::invalid_argument);
}

TEST(SymmetricAllocator, ExhaustionThrows) {
  SymmetricAllocator a(64);
  (void)a.allocate(60);
  EXPECT_THROW((void)a.allocate(8), std::bad_alloc);
  // Overflow-safe: a huge request must not wrap.
  SymmetricAllocator b(64);
  EXPECT_THROW((void)b.allocate(~0ULL - 2), std::bad_alloc);
}

TEST(SymmetricAllocator, LeakTracking) {
  SymmetricAllocator a(1024);
  SymAddr x = a.allocate(8);
  SymAddr y = a.allocate(8);
  EXPECT_EQ(a.outstanding(), 2u);
  a.deallocate(x);
  a.deallocate(y);
  EXPECT_EQ(a.outstanding(), 0u);
  EXPECT_THROW(a.deallocate(x), std::logic_error);
}

}  // namespace
}  // namespace odcm::shmem
