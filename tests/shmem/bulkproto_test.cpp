// Large-message protocol tiering at the OpenSHMEM layer (ISSUE 9).
//
// Covers the two satellite bugfix pins plus the tentpole compositions:
//  * zero-length put/get/iput/iget are complete no-ops — no registration
//    faults, no connection establishment, no credits, no fragments;
//  * tier selection routes by size (eager / pipelined / rendezvous) and
//    every tier moves the right bytes;
//  * a rendezvous RTS against cold chunks acts as a batched registration
//    fault at the target (on-demand registration composition);
//  * rendezvous transfers survive pin-cap eviction pressure — a CTS whose
//    rkey lost the race with an invalidation is rejected and retried.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

core::ConduitConfig tiered_design() {
  core::ConduitConfig conduit = core::proposed_design();
  conduit.eager_threshold = 512;
  conduit.rendezvous_threshold = 4096;
  conduit.bulk_chunk_bytes = 512;
  conduit.qp_credits = 2;
  return conduit;
}

std::vector<std::byte> pattern(std::uint64_t salt, std::size_t len) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = static_cast<std::byte>((salt * 131 + i) & 0xff);
  }
  return out;
}

// ---- zero-length operations (satellite bugfix pin) ----

TEST(BulkProto, ZeroLengthOpsAreCompleteNoOps) {
  ShmemJobConfig config = small_job(4, 1, tiered_design());
  config.shmem.registration = RegistrationMode::kOnDemand;
  config.shmem.reg_chunk_bytes = 8192;
  JobEnv env(config);
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    const SymAddr slot = pe.heap().allocate(64, 8);
    co_await pe.barrier_all();

    // Snapshot which peers are untouched and every counter a zero-length
    // op could possibly bump.
    const RankId dst = (pe.rank() + 1) % pe.n_pes();
    std::vector<core::PeerPhase> phases;
    for (RankId p = 0; p < pe.n_pes(); ++p) {
      phases.push_back(pe.conduit().peer_phase(p));
    }
    sim::StatSet& stats = pe.stats();
    const double faults = stats.counter("reg_rkey_misses");
    const double rts = stats.counter("rdv_rts_sent");
    const double frags = stats.counter("bulk_fragments_sent");
    const double credits = stats.counter("credits_granted");
    const double rdma = stats.counter("rma_put") + stats.counter("rma_get");

    std::vector<std::byte> empty;
    co_await pe.put(dst, slot, empty);
    co_await pe.get(dst, slot, empty);
    pe.iput(dst, slot, empty, 1, 1, 8, 0);
    co_await pe.iget(dst, empty, slot, 1, 1, 8, 0);
    co_await pe.quiet();

    for (RankId p = 0; p < pe.n_pes(); ++p) {
      EXPECT_EQ(pe.conduit().peer_phase(p), phases[p])
          << "zero-length op changed the connection phase toward " << p;
    }
    EXPECT_EQ(stats.counter("reg_rkey_misses"), faults);
    EXPECT_EQ(stats.counter("rdv_rts_sent"), rts);
    EXPECT_EQ(stats.counter("bulk_fragments_sent"), frags);
    EXPECT_EQ(stats.counter("credits_granted"), credits);
    EXPECT_EQ(stats.counter("rma_put") + stats.counter("rma_get"), rdma);
    co_await pe.barrier_all();
  }));
}

// ---- tier routing ----

TEST(BulkProto, TierSelectionRoutesBySizeAndMovesBytes) {
  JobEnv env(small_job(2, 1, tiered_design()));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    const SymAddr eager_buf = pe.heap().allocate(512, 8);
    const SymAddr pipe_buf = pe.heap().allocate(2048, 8);
    const SymAddr rdv_buf = pe.heap().allocate(16384, 8);
    co_await pe.barrier_all();
    const RankId dst = 1 - pe.rank();

    const std::vector<std::byte> small = pattern(pe.rank() + 1, 256);
    const std::vector<std::byte> mid = pattern(pe.rank() + 10, 2048);
    const std::vector<std::byte> large = pattern(pe.rank() + 20, 12288);
    co_await pe.put(dst, eager_buf, small);
    co_await pe.put(dst, pipe_buf, mid);
    co_await pe.put(dst, rdv_buf, large);
    co_await pe.barrier_all();

    std::vector<std::byte> back(12288);
    co_await pe.get(dst, rdv_buf, back);
    EXPECT_EQ(back, large);
    back.resize(2048);
    co_await pe.get(dst, pipe_buf, back);
    EXPECT_EQ(back, mid);
    back.resize(256);
    co_await pe.get(dst, eager_buf, back);
    EXPECT_EQ(back, small);
    co_await pe.barrier_all();

    sim::StatSet& stats = pe.stats();
    EXPECT_GE(stats.counter("bulk_tier_eager"), 1);
    EXPECT_GE(stats.counter("bulk_tier_pipelined"), 2);  // put + get
    EXPECT_GE(stats.counter("bulk_tier_rendezvous"), 2);
    EXPECT_GE(stats.counter("rdv_done"), 2);
    // 12288/512 fragments per rendezvous + 2048/512 per pipelined stream.
    EXPECT_GE(stats.counter("bulk_fragments_sent"), 24 + 4);
    EXPECT_GT(stats.counter("credits_granted"), 0);
  }));
}

// ---- rendezvous × on-demand registration composition ----

TEST(BulkProto, RendezvousRtsActsAsBatchedRegistrationFault) {
  ShmemJobConfig config = small_job(2, 1, tiered_design());
  config.shmem.registration = RegistrationMode::kOnDemand;
  config.shmem.reg_chunk_bytes = 4096;
  JobEnv env(config);
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    const SymAddr buf = pe.heap().allocate(16384, 8);
    co_await pe.barrier_all();
    const RankId dst = 1 - pe.rank();

    // 10000 bytes spanning three 4 KiB chunks, all cold: the RTS must pin
    // every one of them at the target before the CTS comes back, with no
    // per-chunk fault round trips from the initiator.
    const std::vector<std::byte> large = pattern(pe.rank() + 5, 10000);
    co_await pe.put(dst, buf, large);
    co_await pe.barrier_all();

    std::vector<std::byte> back(10000);
    co_await pe.get(dst, buf, back);
    EXPECT_EQ(back, large);
    co_await pe.barrier_all();

    sim::StatSet& stats = pe.stats();
    EXPECT_GE(stats.counter("rdv_done"), 2);  // one put + one get
    // The target pinned chunks for the peer's RTS (misses on its own
    // cache), yet the initiator never sent a single-chunk fault request.
    EXPECT_GE(stats.counter("reg_chunk_misses"), 3);
    EXPECT_EQ(stats.counter("reg_rkey_misses"), 0);
  }));
}

TEST(BulkProto, RendezvousSurvivesEvictionPressure) {
  ShmemJobConfig config = small_job(2, 1, tiered_design());
  config.shmem.registration = RegistrationMode::kOnDemand;
  config.shmem.reg_chunk_bytes = 4096;
  // Pin cap of two chunks: every 10000-byte transfer (three chunks) must
  // evict mid-protocol, so CTS grants race invalidation notices.
  config.shmem.reg_pinned_max_bytes = 2 * 4096;
  JobEnv env(config);
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    const SymAddr a = pe.heap().allocate(16384, 8);
    const SymAddr b = pe.heap().allocate(16384, 8);
    co_await pe.barrier_all();
    const RankId dst = 1 - pe.rank();

    std::vector<std::byte> last_a, last_b;
    for (int round = 0; round < 4; ++round) {
      last_a = pattern(100 + round, 10000);
      last_b = pattern(200 + round, 10000);
      co_await pe.put(dst, a, last_a);
      co_await pe.put(dst, b, last_b);
    }
    co_await pe.barrier_all();
    std::vector<std::byte> back(10000);
    co_await pe.get(dst, a, back);
    EXPECT_EQ(back, last_a);
    co_await pe.get(dst, b, back);
    EXPECT_EQ(back, last_b);
    co_await pe.barrier_all();

    // Alternating three-chunk transfers under a two-chunk cap must evict
    // continuously; the transfers above still delivered exact bytes.
    EXPECT_GT(pe.stats().counter("reg_evictions"), 0);
  }));
}

}  // namespace
}  // namespace odcm::shmem
