// Tests for ShmemPe: initialization paths, put/get, atomics, ordering.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

TEST(StartPes, RecordsPhaseBreakdown) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe&) -> sim::Task<> { co_return; }));
  for (RankId r = 0; r < 4; ++r) {
    sim::StatSet& st = env.job.pe(r).stats();
    EXPECT_GT(st.phase_time("shared_memory_setup"), 0u);
    EXPECT_GT(st.phase_time("memory_registration"), 0u);
    EXPECT_GT(st.phase_time("init_barrier"), 0u);
    EXPECT_GT(st.phase_time("init_other"), 0u);
    EXPECT_GT(st.phase_time("start_pes_total"), 0u);
    // Proposed design: PMI exchange off the critical path.
    EXPECT_LT(st.phase_time("pmi_exchange"), 100 * sim::usec);
  }
}

TEST(StartPes, DoubleInitThrows) {
  JobEnv env(small_job(2, 2));
  env.job.spawn_all([](ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await pe.start_pes();
  });
  EXPECT_THROW(env.engine.run(), std::logic_error);
}

TEST(StartPes, StaticDesignSlowerThanProposed) {
  auto makespan = [](core::ConduitConfig conduit) {
    JobEnv env(small_job(32, 8, conduit));
    env.run(with_init([](ShmemPe&) -> sim::Task<> { co_return; }));
    return env.engine.now();
  };
  EXPECT_GT(makespan(core::current_design()),
            makespan(core::proposed_design()));
}

TEST(StartPes, ModeledHeapChargesExtraRegistration) {
  ShmemJobConfig small = small_job(2, 2);
  ShmemJobConfig big = small_job(2, 2);
  big.shmem.modeled_heap_bytes = 64 << 20;
  auto reg_time = [](ShmemJobConfig config) {
    JobEnv env(config);
    env.run(with_init([](ShmemPe&) -> sim::Task<> { co_return; }));
    return env.job.pe(0).stats().phase_time("memory_registration");
  };
  EXPECT_GT(reg_time(big), 10 * reg_time(small));
}

TEST(PutGet, RemoteRoundTrip) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(64);
    EXPECT_EQ(slot, 0u);  // symmetric across PEs
    if (pe.rank() == 0) {
      std::vector<std::byte> data(64);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 3);
      }
      co_await pe.put(1, slot, data);
      std::vector<std::byte> back(64);
      co_await pe.get(1, slot, back);
      EXPECT_EQ(back, data);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      // The data must actually be in PE 1's heap.
      EXPECT_EQ(pe.local_read<std::uint8_t>(slot + 1), 3u);
    }
  }));
}

TEST(PutGet, SelfTransfersAreLocal) {
  JobEnv env(small_job(2, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8);
    co_await pe.put_value<std::uint64_t>(pe.rank(), slot, 4242);
    std::uint64_t value = co_await pe.get_value<std::uint64_t>(pe.rank(), slot);
    EXPECT_EQ(value, 4242u);
    // Self traffic creates no connections (checked before the finalize
    // barrier, which legitimately connects the tree).
    EXPECT_EQ(pe.communicating_peers(), 0u);
  }));
}

TEST(PutGet, TypedHelpers) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(16);
    if (pe.rank() == 0) {
      co_await pe.put_value<double>(1, slot, 2.5);
      co_await pe.put_value<std::int32_t>(1, slot + 8, -7);
      double d = co_await pe.get_value<double>(1, slot);
      std::int32_t i = co_await pe.get_value<std::int32_t>(1, slot + 8);
      EXPECT_EQ(d, 2.5);
      EXPECT_EQ(i, -7);
    }
    co_await pe.barrier_all();
  }));
}

TEST(PutGet, OutOfHeapThrows) {
  JobEnv env(small_job(2, 1));
  env.job.spawn_all(with_init([](ShmemPe& pe) -> sim::Task<> {
    if (pe.rank() == 0) {
      std::vector<std::byte> data(32);
      co_await pe.put(1, (1 << 16) - 8, data);  // runs past heap end
    }
    co_await pe.barrier_all();
  }));
  EXPECT_THROW(env.engine.run(), std::out_of_range);
}

TEST(PutNbi, QuietDrainsAll) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8 * 16);
    if (pe.rank() == 0) {
      for (std::uint64_t i = 0; i < 16; ++i) {
        std::vector<std::byte> data(8);
        std::memcpy(data.data(), &i, 8);
        pe.put_nbi(1, slot + i * 8, data);
      }
      co_await pe.quiet();
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(pe.local_read<std::uint64_t>(slot + i * 8), i);
      }
    }
  }));
}

TEST(GetNbi, QuietCompletesAll) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8 * 16);
    if (pe.rank() == 1) {
      for (std::uint64_t i = 0; i < 16; ++i) {
        pe.local_write<std::uint64_t>(slot + i * 8, i * 7);
      }
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      std::vector<std::uint64_t> dest(16, 0);
      for (std::uint64_t i = 0; i < 16; ++i) {
        pe.get_nbi(1, slot + i * 8,
                   std::as_writable_bytes(std::span(&dest[i], 1)));
      }
      // Until quiet() the values are undefined; after it, all must have
      // landed.
      co_await pe.quiet();
      for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(dest[i], i * 7);
      }
    }
    co_await pe.barrier_all();
  }));
}

TEST(Atomics, FullPaperSet) {
  // fadd, finc, add, inc, cswap, swap — the six of Fig 6(c).
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(counter, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      std::uint64_t old = co_await pe.atomic_fetch_add(1, counter, 5);
      EXPECT_EQ(old, 0u);
      old = co_await pe.atomic_fetch_inc(1, counter);
      EXPECT_EQ(old, 5u);
      co_await pe.atomic_add(1, counter, 4);
      co_await pe.atomic_inc(1, counter);
      old = co_await pe.atomic_swap(1, counter, 100);
      EXPECT_EQ(old, 11u);
      old = co_await pe.atomic_compare_swap(1, counter, 100, 200);
      EXPECT_EQ(old, 100u);
      old = co_await pe.atomic_compare_swap(1, counter, 100, 300);
      EXPECT_EQ(old, 200u);  // mismatch: no change
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(counter), 200u);
    }
  }));
}

TEST(Atomics, SelfAtomicsWork) {
  JobEnv env(small_job(1, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(counter, 10);
    std::uint64_t old = co_await pe.atomic_fetch_add(0, counter, 1);
    EXPECT_EQ(old, 10u);
    old = co_await pe.atomic_swap(0, counter, 5);
    EXPECT_EQ(old, 11u);
    old = co_await pe.atomic_compare_swap(0, counter, 5, 6);
    EXPECT_EQ(old, 5u);
    EXPECT_EQ(pe.local_read<std::uint64_t>(counter), 6u);
  }));
}

TEST(Atomics, ConcurrentIncrementsFromManyPes) {
  constexpr std::uint32_t kRanks = 8;
  JobEnv env(small_job(kRanks, 4));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr counter = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(counter, 0);
    co_await pe.barrier_all();
    for (int i = 0; i < 10; ++i) {
      co_await pe.atomic_inc(0, counter);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(counter), kRanks * 10u);
    }
  }));
}

TEST(WaitUntil, FlagSignaling) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr flag = pe.heap().allocate(8);
    SymAddr data = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(flag, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      co_await pe.engine().delay(500 * sim::usec);
      co_await pe.put_value<std::uint64_t>(1, data, 777);
      co_await pe.put_value<std::uint64_t>(1, flag, 1);
    } else {
      co_await pe.wait_until(flag, WaitCmp::kEq, 1);
      EXPECT_EQ(pe.local_read<std::uint64_t>(data), 777u);
    }
  }));
}

TEST(WaitUntil, AllComparisons) {
  JobEnv env(small_job(1, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr v = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(v, 10);
    co_await pe.wait_until(v, WaitCmp::kEq, 10);
    co_await pe.wait_until(v, WaitCmp::kNe, 9);
    co_await pe.wait_until(v, WaitCmp::kGt, 9);
    co_await pe.wait_until(v, WaitCmp::kGe, 10);
    co_await pe.wait_until(v, WaitCmp::kLt, 11);
    co_await pe.wait_until(v, WaitCmp::kLe, 10);
  }));
}

TEST(StaticDesign, SegmentExchangeViaActiveMessages) {
  // In the current (static) design the triplets travel over AMs after the
  // mesh is up; puts must work right after start_pes.
  JobEnv env(small_job(4, 2, core::current_design()));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8);
    RankId dst = (pe.rank() + 1) % 4;
    co_await pe.put_value<std::uint64_t>(dst, slot, 1000 + pe.rank());
    co_await pe.barrier_all();
    RankId src = (pe.rank() + 3) % 4;
    EXPECT_EQ(pe.local_read<std::uint64_t>(slot), 1000u + src);
    EXPECT_GT(pe.stats().phase_time("segment_exchange"), 0u);
  }));
}

TEST(OnDemand, PiggybackMakesRdmaPossibleImmediately) {
  // First operation to a fresh peer is RDMA-capable the instant the
  // connection exists: no separate segment exchange messages.
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8);
    if (pe.rank() == 0) {
      co_await pe.put_value<std::uint64_t>(1, slot, 99);
    }
    co_await pe.barrier_all();
  }));
  // Only the connection itself and the barrier AMs flowed; no segment AMs.
  EXPECT_EQ(env.job.pe(1).stats().phase_time("segment_exchange"), 0u);
  EXPECT_EQ(env.job.pe(0).communicating_peers(), 1u);
}

TEST(Finalize, HelloWorldEstablishesOnlyBarrierConnections) {
  JobEnv env(small_job(16, 4));
  env.run(with_init([](ShmemPe&) -> sim::Task<> { co_return; }));
  for (RankId r = 0; r < 16; ++r) {
    // Fanout-4 barrier tree: parent + up to 4 children.
    EXPECT_LE(env.job.pe(r).communicating_peers(), 5u) << "rank " << r;
  }
}

TEST(Determinism, FullStackReproducible) {
  auto run_once = [] {
    JobEnv env(small_job(8, 4));
    env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
      SymAddr slot = pe.heap().allocate(64);
      std::vector<std::byte> data(64, std::byte{1});
      co_await pe.put((pe.rank() + 1) % 8, slot, data);
      co_await pe.barrier_all();
    }));
    return env.engine.now();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace odcm::shmem
