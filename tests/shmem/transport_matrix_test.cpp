// Cross-transport conformance matrix (ISSUE 6 satellite).
//
// Runs one put/get/atomic/collective/GlobalArray workload over every cell
// of {rc, shm} × {static, on_demand} × {blocking, iallgather} × PPN {1, 4}
// and asserts that the final symmetric-heap contents of every PE are
// byte-identical to the RC-only run of the same cell. The workload is
// single-writer per location (atomic sums excepted — those are
// order-independent), so the final heap image is transport-invariant by
// construction; any divergence means a transport delivered bytes to the
// wrong place, dropped an op, or broke atomic coherence.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "shmem/global_array.hpp"
#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

constexpr std::uint32_t kPes = 8;

struct Cell {
  core::ConnectionMode conn;
  core::PmiMode pmi;
  std::uint32_t ppn;
};

std::string cell_name(const Cell& cell, IntranodeTransport transport) {
  std::string name =
      cell.conn == core::ConnectionMode::kStatic ? "static" : "on_demand";
  name += cell.pmi == core::PmiMode::kBlocking ? "/blocking" : "/iallgather";
  name += "/ppn" + std::to_string(cell.ppn);
  name += transport == IntranodeTransport::kShm ? "/shm" : "/rc";
  return name;
}

// The conformance workload. Every remote location has exactly one writer
// (except the PE-0 counter, whose final value is an order-independent sum),
// so the heap image after the closing barrier is the same no matter which
// transport carried each op.
sim::Task<> workload(ShmemPe& pe) {
  const std::uint32_t n = pe.n_pes();
  const RankId me = pe.rank();
  const RankId right = (me + 1) % n;
  const RankId left = (me + n - 1) % n;

  // Symmetric layout (identical allocation order on every PE).
  const SymAddr ring = pe.heap().allocate(64, 8);
  const SymAddr counter = pe.heap().allocate(8, 8);
  const SymAddr swap_slot = pe.heap().allocate(8, 8);
  const SymAddr cswap_slot = pe.heap().allocate(8, 8);
  const SymAddr bcast = pe.heap().allocate(32, 8);
  const SymAddr red_src = pe.heap().allocate(8, 8);
  const SymAddr red_dst = pe.heap().allocate(8, 8);
  const SymAddr fc_src = pe.heap().allocate(8, 8);
  const SymAddr fc_dst = pe.heap().allocate(8 * n, 8);

  // put into the right neighbor, get it back, verify.
  std::vector<std::byte> pattern(64);
  for (std::size_t k = 0; k < pattern.size(); ++k) {
    pattern[k] = static_cast<std::byte>((me * 31 + k) & 0xff);
  }
  co_await pe.put(right, ring, pattern);
  co_await pe.barrier_all();
  std::vector<std::byte> back(64);
  co_await pe.get(right, ring, back);
  EXPECT_EQ(back, pattern) << "pe" << me;

  // Atomic sum on PE 0 (mixed same-node/cross-node writers at PPN 4).
  (void)co_await pe.atomic_fetch_add(0, counter, me + 1);
  // Single-writer swap/cswap into the right neighbor.
  std::uint64_t old = co_await pe.atomic_swap(right, swap_slot, 0xAB00 + me);
  EXPECT_EQ(old, 0u);
  old = co_await pe.atomic_compare_swap(right, cswap_slot, 0, 0xCD00 + me);
  EXPECT_EQ(old, 0u);
  co_await pe.barrier_all();
  if (me == 0) {
    EXPECT_EQ(pe.local_read<std::uint64_t>(counter),
              std::uint64_t{n} * (n + 1) / 2);
  }
  EXPECT_EQ(pe.local_read<std::uint64_t>(swap_slot), 0xAB00u + left);
  EXPECT_EQ(pe.local_read<std::uint64_t>(cswap_slot), 0xCD00u + left);

  // Collectives: broadcast from PE 1, sum reduction, fcollect.
  if (me == 1) {
    for (std::uint32_t k = 0; k < 4; ++k) {
      pe.local_write<std::uint64_t>(bcast + 8 * k, 0xB0A0 + k);
    }
  }
  co_await pe.broadcast(1, bcast, 32);
  for (std::uint32_t k = 0; k < 4; ++k) {
    EXPECT_EQ(pe.local_read<std::uint64_t>(bcast + 8 * k), 0xB0A0u + k);
  }
  pe.local_write<std::uint64_t>(red_src, me + 1);
  co_await pe.reduce<std::uint64_t>(red_dst, red_src, 1, ReduceOp::kSum);
  EXPECT_EQ(pe.local_read<std::uint64_t>(red_dst),
            std::uint64_t{n} * (n + 1) / 2);
  pe.local_write<std::uint64_t>(fc_src, 100 + me);
  co_await pe.fcollect(fc_dst, fc_src, 8);
  for (std::uint32_t r = 0; r < n; ++r) {
    EXPECT_EQ(pe.local_read<std::uint64_t>(fc_dst + 8 * r), 100u + r);
  }

  // GlobalArray: local fill, remote reads, one remote write per PE.
  GlobalArray<std::uint64_t> array(pe, 3 * n);
  auto [lo, hi] = array.local_range();
  for (std::uint64_t i = lo; i < hi; ++i) {
    array.local_set(i, i * i + 1);
  }
  co_await array.sync();
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    EXPECT_EQ(co_await array.read(i), i * i + 1);
  }
  co_await array.sync();
  // Each PE overwrites the first element of its right neighbor's block.
  co_await array.write(static_cast<std::uint64_t>(right) * array.block(),
                       7000 + me);
  co_await array.sync();
  co_await pe.barrier_all();
}

/// Run one cell and return every PE's full heap image.
std::vector<std::vector<std::byte>> run_cell(const Cell& cell,
                                             IntranodeTransport transport) {
  core::ConduitConfig conduit;
  conduit.connection_mode = cell.conn;
  conduit.pmi_mode = cell.pmi;
  conduit.init_barrier_mode = cell.conn == core::ConnectionMode::kStatic
                                  ? core::BarrierMode::kGlobal
                                  : core::BarrierMode::kIntraNode;
  conduit.intranode_transport = transport;
  JobEnv env(small_job(kPes, cell.ppn, conduit));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> { co_await workload(pe); }));

  if (transport == IntranodeTransport::kShm && cell.ppn > 1) {
    // The shm path must actually have carried traffic.
    sim::StatSet totals = env.job.conduit_job().aggregate_stats();
    EXPECT_GT(totals.counter("rma_put_shm") + totals.counter("rma_get_shm") +
                  totals.counter("rma_atomic_shm") +
                  totals.counter("am_sent_shm"),
              0)
        << cell_name(cell, transport);
  }

  std::vector<std::vector<std::byte>> heaps;
  heaps.reserve(kPes);
  for (RankId r = 0; r < kPes; ++r) {
    auto window =
        env.job.pe(r).local_window(0, env.job.shmem_config().heap_bytes);
    heaps.emplace_back(window.begin(), window.end());
  }
  return heaps;
}

TEST(TransportMatrix, ShmMatchesRcBaselineByteForByte) {
  const Cell cells[] = {
      {core::ConnectionMode::kStatic, core::PmiMode::kBlocking, 1},
      {core::ConnectionMode::kStatic, core::PmiMode::kBlocking, 4},
      {core::ConnectionMode::kStatic, core::PmiMode::kNonBlocking, 1},
      {core::ConnectionMode::kStatic, core::PmiMode::kNonBlocking, 4},
      {core::ConnectionMode::kOnDemand, core::PmiMode::kBlocking, 1},
      {core::ConnectionMode::kOnDemand, core::PmiMode::kBlocking, 4},
      {core::ConnectionMode::kOnDemand, core::PmiMode::kNonBlocking, 1},
      {core::ConnectionMode::kOnDemand, core::PmiMode::kNonBlocking, 4},
  };
  for (const Cell& cell : cells) {
    SCOPED_TRACE(cell_name(cell, IntranodeTransport::kShm));
    auto rc = run_cell(cell, IntranodeTransport::kRc);
    auto shm = run_cell(cell, IntranodeTransport::kShm);
    ASSERT_EQ(rc.size(), shm.size());
    for (RankId r = 0; r < kPes; ++r) {
      EXPECT_EQ(rc[r], shm[r]) << "heap contents diverged at pe" << r;
    }
  }
}

// Registration row of the matrix (ISSUE 7 satellite): the same workload
// under {eager, on_demand} registration × {rc, shm} intranode transport
// must produce byte-identical heaps. On-demand registration changes *when*
// chunks are pinned and *which* rkeys carry each RMA — never the bytes.
TEST(TransportMatrix, RegistrationModesMatchByteForByte) {
  auto run_reg_cell = [](RegistrationMode registration,
                         IntranodeTransport transport) {
    core::ConduitConfig conduit = core::proposed_design();
    conduit.intranode_transport = transport;
    ShmemJobConfig config = small_job(kPes, 4, conduit);
    config.shmem.registration = registration;
    config.shmem.reg_chunk_bytes = 8192;  // several chunks per 64 KiB heap
    JobEnv env(config);
    env.run(
        with_init([](ShmemPe& pe) -> sim::Task<> { co_await workload(pe); }));

    if (registration == RegistrationMode::kOnDemand &&
        transport == IntranodeTransport::kRc) {
      // The lazy path must actually have served faults.
      sim::StatSet totals = env.job.conduit_job().aggregate_stats();
      EXPECT_GT(totals.counter("reg_faults_served"), 0);
    }

    std::vector<std::vector<std::byte>> heaps;
    heaps.reserve(kPes);
    for (RankId r = 0; r < kPes; ++r) {
      auto window =
          env.job.pe(r).local_window(0, env.job.shmem_config().heap_bytes);
      heaps.emplace_back(window.begin(), window.end());
    }
    return heaps;
  };

  auto baseline =
      run_reg_cell(RegistrationMode::kEager, IntranodeTransport::kRc);
  struct RegCell {
    RegistrationMode registration;
    IntranodeTransport transport;
    const char* name;
  };
  const RegCell cells[] = {
      {RegistrationMode::kEager, IntranodeTransport::kShm, "eager/shm"},
      {RegistrationMode::kOnDemand, IntranodeTransport::kRc, "on_demand/rc"},
      {RegistrationMode::kOnDemand, IntranodeTransport::kShm,
       "on_demand/shm"},
  };
  for (const RegCell& cell : cells) {
    SCOPED_TRACE(cell.name);
    auto heaps = run_reg_cell(cell.registration, cell.transport);
    ASSERT_EQ(heaps.size(), baseline.size());
    for (RankId r = 0; r < kPes; ++r) {
      EXPECT_EQ(heaps[r], baseline[r]) << "heap contents diverged at pe" << r;
    }
  }
}

// Large-message tier row of the matrix (ISSUE 9 tentpole): the same
// workload — now including puts/gets big enough to cross the pipelined and
// rendezvous thresholds — must produce byte-identical heaps over
// {eager, pipelined, rendezvous} tiering × {rc, shm} intranode transport ×
// {eager, on_demand} registration. Tiering changes *how* bytes move
// (fragment streams, RTS/CTS, credit stalls) — never which bytes land.
TEST(TransportMatrix, BulkTiersMatchEagerBaselineByteForByte) {
  enum class Tier { kEager, kPipelined, kRendezvous };
  auto tier_name = [](Tier tier) {
    switch (tier) {
      case Tier::kEager: return "eager";
      case Tier::kPipelined: return "pipelined";
      case Tier::kRendezvous: return "rendezvous";
    }
    return "?";
  };

  auto run_tier_cell = [](Tier tier, IntranodeTransport transport,
                          RegistrationMode registration) {
    core::ConduitConfig conduit = core::proposed_design();
    conduit.intranode_transport = transport;
    if (tier != Tier::kEager) {
      conduit.eager_threshold = 1024;
      conduit.bulk_chunk_bytes = 1024;
      conduit.qp_credits = 2;
    }
    if (tier == Tier::kRendezvous) {
      conduit.rendezvous_threshold = 4096;
    }
    ShmemJobConfig config = small_job(kPes, 4, conduit);
    config.shmem.registration = registration;
    config.shmem.reg_chunk_bytes = 8192;
    JobEnv env(config);
    env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
      co_await workload(pe);
      // Bulk extension: a 12 KiB and a 2 KiB single-writer put into the
      // right neighbor, read back and verified, so the tiered data paths
      // carry real traffic in every cell.
      const std::uint32_t n = pe.n_pes();
      const RankId me = pe.rank();
      const RankId right = (me + 1) % n;
      const SymAddr big = pe.heap().allocate(12288, 8);
      const SymAddr mid = pe.heap().allocate(2048, 8);
      std::vector<std::byte> big_pat(12288), mid_pat(2048);
      for (std::size_t k = 0; k < big_pat.size(); ++k) {
        big_pat[k] = static_cast<std::byte>((me * 67 + k) & 0xff);
      }
      for (std::size_t k = 0; k < mid_pat.size(); ++k) {
        mid_pat[k] = static_cast<std::byte>((me * 41 + k * 3) & 0xff);
      }
      co_await pe.put(right, big, big_pat);
      co_await pe.put(right, mid, mid_pat);
      co_await pe.barrier_all();
      std::vector<std::byte> back(12288);
      co_await pe.get(right, big, back);
      EXPECT_EQ(back, big_pat) << "pe" << me;
      back.resize(2048);
      co_await pe.get(right, mid, back);
      EXPECT_EQ(back, mid_pat) << "pe" << me;
      co_await pe.barrier_all();
    }));

    if (tier == Tier::kRendezvous && transport == IntranodeTransport::kRc) {
      sim::StatSet totals = env.job.conduit_job().aggregate_stats();
      EXPECT_GT(totals.counter("rdv_done"), 0);
      EXPECT_GT(totals.counter("bulk_fragments_sent"), 0);
    }

    std::vector<std::vector<std::byte>> heaps;
    heaps.reserve(kPes);
    for (RankId r = 0; r < kPes; ++r) {
      auto window =
          env.job.pe(r).local_window(0, env.job.shmem_config().heap_bytes);
      heaps.emplace_back(window.begin(), window.end());
    }
    return heaps;
  };

  auto baseline = run_tier_cell(Tier::kEager, IntranodeTransport::kRc,
                                RegistrationMode::kEager);
  for (Tier tier : {Tier::kEager, Tier::kPipelined, Tier::kRendezvous}) {
    for (IntranodeTransport transport :
         {IntranodeTransport::kRc, IntranodeTransport::kShm}) {
      for (RegistrationMode registration :
           {RegistrationMode::kEager, RegistrationMode::kOnDemand}) {
        if (tier == Tier::kEager && transport == IntranodeTransport::kRc &&
            registration == RegistrationMode::kEager) {
          continue;  // the baseline itself
        }
        SCOPED_TRACE(std::string(tier_name(tier)) +
                     (transport == IntranodeTransport::kShm ? "/shm" : "/rc") +
                     (registration == RegistrationMode::kOnDemand
                          ? "/on_demand"
                          : "/eager_reg"));
        auto heaps = run_tier_cell(tier, transport, registration);
        ASSERT_EQ(heaps.size(), baseline.size());
        for (RankId r = 0; r < kPes; ++r) {
          EXPECT_EQ(heaps[r], baseline[r])
              << "heap contents diverged at pe" << r;
        }
      }
    }
  }
}

// With on-demand + shm at PPN 4, same-node pairs must not consume RC QPs:
// every same-node peer stays phase-Idle and the shm peer counter accounts
// for the node-local traffic instead.
TEST(TransportMatrix, SameNodePeersBypassConnectionsEntirely) {
  core::ConduitConfig conduit = core::proposed_design();
  conduit.intranode_transport = IntranodeTransport::kShm;
  JobEnv env(small_job(kPes, 4, conduit));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> { co_await workload(pe); }));

  core::ConduitJob& job = env.job.conduit_job();
  for (RankId r = 0; r < kPes; ++r) {
    core::Conduit& conduit_r = job.conduit(r);
    EXPECT_GT(conduit_r.shm_peer_count(), 0u) << "pe" << r;
    for (RankId p = 0; p < kPes; ++p) {
      if (job.node_of(p) == job.node_of(r)) {
        EXPECT_EQ(conduit_r.peer_phase(p), core::PeerPhase::kIdle)
            << "pe" << r << " opened a connection to same-node peer " << p;
      }
    }
  }
}

}  // namespace
}  // namespace odcm::shmem
