// Helpers for OpenSHMEM-layer tests.
#pragma once

#include <functional>

#include "shmem/job.hpp"
#include "sim/engine.hpp"

namespace odcm::shmem::testutil {

struct JobEnv {
  explicit JobEnv(ShmemJobConfig config) : job(engine, config) {}

  void run(std::function<sim::Task<>(ShmemPe&)> program) {
    job.spawn_all(std::move(program));
    engine.run();
  }

  sim::Engine engine;
  ShmemJob job;
};

/// Small job with the paper's proposed design (on-demand + Iallgather +
/// intra-node barriers) unless overridden.
inline ShmemJobConfig small_job(
    std::uint32_t ranks, std::uint32_t ppn,
    core::ConduitConfig conduit = core::proposed_design()) {
  ShmemJobConfig config;
  config.job.ranks = ranks;
  config.job.ranks_per_node = ppn;
  config.job.conduit = conduit;
  config.shmem.heap_bytes = 1 << 16;
  // Keep init cheap in unit tests; benches use realistic values.
  config.shmem.shared_memory_base = 100 * sim::usec;
  config.shmem.shared_memory_per_pe = 10 * sim::usec;
  config.shmem.init_misc = 50 * sim::usec;
  return config;
}

/// A program that initializes, runs `body`, and finalizes.
inline std::function<sim::Task<>(ShmemPe&)> with_init(
    std::function<sim::Task<>(ShmemPe&)> body) {
  return [body = std::move(body)](ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    co_await body(pe);
    co_await pe.finalize();
  };
}

}  // namespace odcm::shmem::testutil
