// Registration torture (ctest labels: torture, registration): on-demand
// memory registration under a tiny pin cap, CROSSED with on-demand
// connection eviction (max_active_connections = 2) and scripted UD fault
// plans. Every run carries the full invariant checker — rkey liveness,
// pin-cap accounting, no use after invalidation — plus an exact
// data-integrity audit: RC is reliable, so every atomic lands exactly once
// and every put's last value survives, no matter how often chunks are
// drained, connections are evicted, or UD datagrams are dropped.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/fault_plan.hpp"
#include "check/invariants.hpp"
#include "shmem/job.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

constexpr std::uint32_t kRanks = 6;
constexpr std::uint64_t kChunk = 8192;   // 8 chunks of the 64 KiB heap
constexpr std::uint64_t kPinCap = 2 * kChunk;
constexpr std::uint32_t kRounds = 8;

struct RegTortureResult {
  bool ok = true;
  std::string failure{};
  std::uint64_t events_seen = 0;
  std::int64_t evictions = 0;
  std::int64_t faults_served = 0;
};

/// One seeded run: random puts/atomics from every PE across random peers
/// and chunks, then a global audit of the final heap contents.
/// `schedule_seed` != 0 additionally permutes same-timestamp event order
/// (sim::SchedulePolicy::kSeededShuffle), crossing the registration
/// protocol with schedule perturbation.
RegTortureResult run_reg_torture(std::uint64_t seed, std::uint32_t recipe,
                                 std::uint64_t schedule_seed = 0) {
  RegTortureResult result;

  core::ConduitConfig conduit = core::proposed_design();
  conduit.max_active_connections = 2;  // connection eviction in the mix
  ShmemJobConfig config = small_job(kRanks, /*ppn=*/1, conduit);
  config.shmem.registration = RegistrationMode::kOnDemand;
  config.shmem.reg_chunk_bytes = kChunk;
  config.shmem.reg_pinned_max_bytes = kPinCap;

  JobEnv env(config);
  if (schedule_seed != 0) {
    sim::SchedulePolicy policy;
    policy.tie_break = sim::SchedulePolicy::TieBreak::kSeededShuffle;
    policy.seed = schedule_seed;
    env.engine.set_schedule_policy(policy);
  }

  check::FaultPlan plan = check::FaultPlan::from_recipe(recipe, seed, kRanks);
  plan.install(env.job.conduit_job().fabric());

  check::InvariantChecker::Options options;
  options.max_retries = conduit.conn_max_retries;
  options.payloads_expected = true;
  options.ranks_per_node = 1;
  options.reg_chunk_bytes = kChunk;
  options.reg_pinned_max_bytes = kPinCap;
  options.reg_heap_bytes = config.shmem.heap_bytes;
  check::InvariantChecker checker(options);
  env.job.conduit_job().set_observer(&checker);

  // Layout per chunk: [0] atomic counter, [8 + 8*writer] one put slot per
  // writer rank. Single writer per slot + order-independent sums => the
  // final image is fully predictable.
  std::vector<std::vector<std::uint64_t>> adds(kRanks,
                                               std::vector<std::uint64_t>(8));
  std::vector<std::vector<std::uint64_t>> last_put(
      kRanks, std::vector<std::uint64_t>(8 * kRanks));

  env.job.spawn_all(with_init([&, seed](ShmemPe& pe) -> sim::Task<> {
    const RankId me = pe.rank();
    co_await pe.barrier_all();
    sim::Rng traffic(seed * 1000003ULL + me);
    for (std::uint32_t round = 0; round < kRounds; ++round) {
      auto dst = static_cast<RankId>(traffic.next_below(kRanks));
      if (dst == me) dst = (dst + 1) % kRanks;
      auto chunk = static_cast<std::uint32_t>(traffic.next_below(8));
      SymAddr base = std::uint64_t{chunk} * kChunk;
      if (traffic.chance(0.5)) {
        ++adds[dst][chunk];
        (void)co_await pe.atomic_fetch_add(dst, base, 1);
      } else {
        std::uint64_t value =
            (std::uint64_t{me} << 32) | (round + 1);
        last_put[dst][chunk * kRanks + me] = value;
        co_await pe.put_value<std::uint64_t>(dst, base + 8 + 8 * me, value);
      }
    }
    co_await pe.barrier_all();
  }));

  try {
    env.engine.run();
    checker.check_final(env.job.conduit_job(), /*after_teardown=*/true);
  } catch (const std::exception& error) {
    result.failure = error.what();
  }

  if (result.failure.empty()) {
    for (RankId r = 0; r < kRanks; ++r) {
      ShmemPe& pe = env.job.pe(r);
      for (std::uint32_t chunk = 0; chunk < 8; ++chunk) {
        SymAddr base = std::uint64_t{chunk} * kChunk;
        std::uint64_t landed = pe.local_read<std::uint64_t>(base);
        if (landed != adds[r][chunk]) {
          result.failure = "atomic adds lost or duplicated at rank " +
                           std::to_string(r) + " chunk " +
                           std::to_string(chunk) + ": expected " +
                           std::to_string(adds[r][chunk]) + ", landed " +
                           std::to_string(landed);
          break;
        }
        for (RankId w = 0; w < kRanks; ++w) {
          std::uint64_t expect = last_put[r][chunk * kRanks + w];
          std::uint64_t got =
              pe.local_read<std::uint64_t>(base + 8 + 8 * w);
          if (got != expect) {
            result.failure =
                "put slot corrupted at rank " + std::to_string(r) +
                " chunk " + std::to_string(chunk) + " writer " +
                std::to_string(w) + ": expected " + std::to_string(expect) +
                ", got " + std::to_string(got);
            break;
          }
        }
        if (!result.failure.empty()) break;
      }
      if (!result.failure.empty()) break;
    }
  }

  result.ok = result.failure.empty();
  result.events_seen = checker.events_seen();
  sim::StatSet totals = env.job.conduit_job().aggregate_stats();
  result.evictions = totals.counter("reg_evictions");
  result.faults_served = totals.counter("reg_faults_served");
  if (!result.ok) {
    result.failure += "\n  seed=" + std::to_string(seed) +
                      " recipe=" + check::FaultPlan::recipe_name(recipe) +
                      " schedule_seed=" + std::to_string(schedule_seed) +
                      "\n  plan: " + plan.describe();
  }
  return result;
}

TEST(RegTorture, SweepAllRecipes) {
  std::int64_t total_evictions = 0;
  std::int64_t total_faults = 0;
  for (std::uint32_t recipe = 0; recipe < check::FaultPlan::kRecipeCount;
       ++recipe) {
    for (std::uint64_t i = 0; i < 5; ++i) {
      RegTortureResult result = run_reg_torture(5000 + i, recipe);
      ASSERT_TRUE(result.ok) << result.failure;
      EXPECT_GT(result.events_seen, 0u);
      total_evictions += result.evictions;
      total_faults += result.faults_served;
    }
  }
  // The sweep must actually exercise the eviction drain, not just warm
  // hits: 8 chunks per target under a 2-chunk cap guarantees churn.
  EXPECT_GT(total_evictions, 0);
  EXPECT_GT(total_faults, 0);
}

TEST(RegTorture, SurvivesPerturbedSchedules) {
  // Schedule exploration crossed with the registration recipes: the pin-cap
  // drain, the rkey-fault protocol and the connection-eviction drain all
  // stay correct under seeded tie-break permutations of the event queue.
  for (std::uint32_t recipe : {0u, 1u, 4u}) {
    for (std::uint64_t schedule_seed : {5ull, 29ull}) {
      RegTortureResult result =
          run_reg_torture(6000 + schedule_seed, recipe, schedule_seed);
      ASSERT_TRUE(result.ok) << result.failure;
    }
  }
}

TEST(RegTorture, EvictionChurnSurvivesRequestDrops) {
  // Recipe 1 (UD ConnectRequest loss) while both the pin cap AND the
  // connection cap force constant eviction: the worst crossing of the two
  // protocols. A single deep run with more rounds than the sweep.
  RegTortureResult result = run_reg_torture(/*seed=*/424242, /*recipe=*/1);
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_GT(result.evictions, 0);
}

}  // namespace
}  // namespace odcm::shmem
