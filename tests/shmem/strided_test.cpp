// Tests for strided transfers (iput/iget), fence, and shmem_ptr-style
// same-node direct access.
#include <gtest/gtest.h>

#include <vector>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

TEST(Iput, StridedScatterPlacesElements) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr buf = pe.heap().allocate(8 * 16);
    for (int i = 0; i < 16; ++i) pe.local_write<std::uint64_t>(buf + 8 * i, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      // Source: 4 contiguous u64; target: every third slot.
      std::vector<std::byte> src(8 * 4);
      for (std::uint64_t k = 0; k < 4; ++k) {
        std::memcpy(src.data() + 8 * k, &k, 8);
      }
      pe.iput(1, buf, src, /*dst_stride=*/3, /*src_stride=*/1, /*elem=*/8,
              /*nelems=*/4);
      co_await pe.quiet();
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      for (std::uint64_t k = 0; k < 4; ++k) {
        EXPECT_EQ(pe.local_read<std::uint64_t>(buf + 8 * (3 * k)), k);
      }
      // Untouched gaps stay zero.
      EXPECT_EQ(pe.local_read<std::uint64_t>(buf + 8 * 1), 0u);
      EXPECT_EQ(pe.local_read<std::uint64_t>(buf + 8 * 2), 0u);
    }
  }));
}

TEST(Iget, StridedGatherReadsElements) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr buf = pe.heap().allocate(8 * 12);
    for (std::uint64_t i = 0; i < 12; ++i) {
      pe.local_write<std::uint64_t>(buf + 8 * i, 100 * pe.rank() + i);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      // Read every second element from PE 1 into a packed buffer.
      std::vector<std::byte> dest(8 * 6);
      co_await pe.iget(1, dest, buf, /*dst_stride=*/1, /*src_stride=*/2,
                       /*elem=*/8, /*nelems=*/6);
      for (std::uint64_t k = 0; k < 6; ++k) {
        std::uint64_t value = 0;
        std::memcpy(&value, dest.data() + 8 * k, 8);
        EXPECT_EQ(value, 100 + 2 * k);
      }
    }
    co_await pe.barrier_all();
  }));
}

TEST(Iput, SourceTooSmallThrows) {
  JobEnv env(small_job(2, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr buf = pe.heap().allocate(64);
    std::vector<std::byte> tiny(8);
    EXPECT_THROW(pe.iput(1 - pe.rank(), buf, tiny, 1, 2, 8, 2),
                 std::out_of_range);
    EXPECT_THROW(pe.iput(1 - pe.rank(), buf, tiny, 0, 1, 8, 1),
                 std::invalid_argument);
    co_await pe.barrier_all();
  }));
}

TEST(Fence, OrdersPutsToSamePeer) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr data = pe.heap().allocate(8);
    SymAddr flag = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(flag, 0);
    co_await pe.barrier_all();
    if (pe.rank() == 0) {
      std::uint64_t value = 777;
      std::vector<std::byte> bytes(8);
      std::memcpy(bytes.data(), &value, 8);
      pe.put_nbi(1, data, bytes);
      co_await pe.fence();  // data must land before the flag
      co_await pe.put_value<std::uint64_t>(1, flag, 1);
    } else {
      co_await pe.wait_until(flag, WaitCmp::kEq, 1);
      EXPECT_EQ(pe.local_read<std::uint64_t>(data), 777u);
    }
  }));
}

TEST(LocalPtr, SameNodeGivesDirectAccess) {
  JobEnv env(small_job(4, 2));  // ranks 0,1 on node 0; 2,3 on node 1
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(slot, 4000 + pe.rank());
    co_await pe.barrier_all();
    RankId buddy = pe.rank() ^ 1u;  // same node
    auto window = pe.local_ptr(buddy, slot, 8);
    EXPECT_TRUE(window.has_value());
    if (window) {
      std::uint64_t value = 0;
      std::memcpy(&value, window->data(), 8);
      EXPECT_EQ(value, 4000u + buddy);
    }
    // Direct store is immediately visible to the owner.
    if (pe.rank() == 0 && window) {
      std::uint64_t updated = 9999;
      std::memcpy(window->data(), &updated, 8);
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(slot), 9999u);
    }
    // Cross-node peers have no load/store path.
    RankId far = (pe.rank() + 2) % 4;
    EXPECT_FALSE(pe.local_ptr(far, slot, 8).has_value());
    EXPECT_THROW((void)pe.local_ptr(99, slot, 8), std::out_of_range);
  }));
}

}  // namespace
}  // namespace odcm::shmem
