// Mixed-coherence atomics (ISSUE 6 satellite): same-node PEs reach a
// symmetric counter over the shm transport, cross-node PEs over RC, and the
// owner over plain local RMW — all three paths target the same backing
// bytes, so every fetch_add must be globally atomic. The fetched old values
// of N*K increments of 1 starting from 0 must form an exact permutation of
// 0..N*K-1; any lost update, duplicate, or torn RMW breaks that.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

constexpr std::uint32_t kPes = 8;   // 2 nodes at PPN 4
constexpr std::uint32_t kPpn = 4;
constexpr std::uint64_t kOpsPerPe = 16;
constexpr RankId kTarget = 1;

TEST(ShmCoherence, MixedTransportFetchAddSumsExactly) {
  core::ConduitConfig conduit = core::proposed_design();
  conduit.intranode_transport = IntranodeTransport::kShm;
  JobEnv env(small_job(kPes, kPpn, conduit));

  std::vector<std::uint64_t> olds;  // fetched old values, all PEs interleaved
  env.run(with_init([&olds](ShmemPe& pe) -> sim::Task<> {
    const SymAddr counter = pe.heap().allocate(8, 8);
    co_await pe.barrier_all();
    for (std::uint64_t k = 0; k < kOpsPerPe; ++k) {
      olds.push_back(co_await pe.atomic_fetch_add(kTarget, counter, 1));
    }
    co_await pe.barrier_all();
    if (pe.rank() == kTarget) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(counter),
                std::uint64_t{kPes} * kOpsPerPe);
    }
  }));

  // The shm path must have carried the same-node increments (PEs 0, 2, 3;
  // the owner itself uses the local fast path)...
  sim::StatSet totals = env.job.conduit_job().aggregate_stats();
  EXPECT_EQ(totals.counter("rma_atomic_shm"), std::uint64_t{kPpn - 1} * kOpsPerPe);
  // ...and the cross-node PEs must have gone through RC connections.
  for (RankId r = kPpn; r < kPes; ++r) {
    EXPECT_EQ(env.job.conduit_job().conduit(r).peer_phase(kTarget),
              core::PeerPhase::kConnected)
        << "pe" << r;
  }

  // Atomicity: the old values are a permutation of 0..N*K-1.
  ASSERT_EQ(olds.size(), std::size_t{kPes} * kOpsPerPe);
  std::vector<std::uint64_t> sorted = olds;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint64_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], i) << "lost or duplicated increment";
  }
}

}  // namespace
}  // namespace odcm::shmem
