// Tests for OpenSHMEM collectives: barrier_all, broadcast, fcollect, reduce.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "shmem/job.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

TEST(BarrierAll, SynchronizesAllPes) {
  JobEnv env(small_job(8, 4));
  std::vector<sim::Time> passed(8, 0);
  env.run(with_init([&passed](ShmemPe& pe) -> sim::Task<> {
    if (pe.rank() == 3) {
      co_await pe.engine().delay(2 * sim::msec);
    }
    co_await pe.barrier_all();
    passed[pe.rank()] = pe.engine().now();
  }));
  for (RankId r = 0; r < 8; ++r) {
    EXPECT_GE(passed[r], 2 * sim::msec);
  }
}

TEST(BarrierAll, CompletesOutstandingNbiPuts) {
  JobEnv env(small_job(2, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8);
    if (pe.rank() == 0) {
      std::uint64_t value = 31337;
      std::vector<std::byte> data(8);
      std::memcpy(data.data(), &value, 8);
      pe.put_nbi(1, slot, data);
      // barrier_all implies quiet: the put must land before anyone passes.
    }
    co_await pe.barrier_all();
    if (pe.rank() == 1) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(slot), 31337u);
    }
  }));
}

TEST(Broadcast, FromRootZero) {
  JobEnv env(small_job(8, 4));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr buf = pe.heap().allocate(32);
    if (pe.rank() == 0) {
      for (int i = 0; i < 4; ++i) {
        pe.local_write<std::uint64_t>(buf + i * 8, 1000 + i);
      }
    }
    co_await pe.broadcast(0, buf, 32);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(buf + i * 8), 1000u + i);
    }
  }));
}

TEST(Broadcast, FromNonZeroRoot) {
  JobEnv env(small_job(6, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr buf = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(buf, pe.rank());
    co_await pe.broadcast(4, buf, 8);
    EXPECT_EQ(pe.local_read<std::uint64_t>(buf), 4u);
  }));
}

TEST(Broadcast, BackToBackRoundsDoNotMix) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr buf = pe.heap().allocate(8);
    for (std::uint64_t round = 0; round < 5; ++round) {
      if (pe.rank() == 0) {
        pe.local_write<std::uint64_t>(buf, round * 11);
      }
      co_await pe.broadcast(0, buf, 8);
      EXPECT_EQ(pe.local_read<std::uint64_t>(buf), round * 11);
    }
  }));
}

TEST(Fcollect, GathersAllBlocksEverywhere) {
  constexpr std::uint32_t kRanks = 8;
  JobEnv env(small_job(kRanks, 4));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(16);
    SymAddr dest = pe.heap().allocate(16 * kRanks);
    pe.local_write<std::uint64_t>(src, 100 + pe.rank());
    pe.local_write<std::uint64_t>(src + 8, 200 + pe.rank());
    co_await pe.fcollect(dest, src, 16);
    for (RankId r = 0; r < kRanks; ++r) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(dest + r * 16), 100u + r);
      EXPECT_EQ(pe.local_read<std::uint64_t>(dest + r * 16 + 8), 200u + r);
    }
  }));
}

TEST(Fcollect, SinglePeTrivial) {
  JobEnv env(small_job(1, 1));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8);
    SymAddr dest = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(src, 5);
    co_await pe.fcollect(dest, src, 8);
    EXPECT_EQ(pe.local_read<std::uint64_t>(dest), 5u);
  }));
}

TEST(Reduce, SumInt64) {
  constexpr std::uint32_t kRanks = 6;
  JobEnv env(small_job(kRanks, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(24);
    SymAddr dest = pe.heap().allocate(24);
    for (int e = 0; e < 3; ++e) {
      pe.local_write<std::int64_t>(src + e * 8, pe.rank() + e);
    }
    co_await pe.reduce<std::int64_t>(dest, src, 3, ReduceOp::kSum);
    // sum over ranks of (rank + e) = 15 + 6e
    for (int e = 0; e < 3; ++e) {
      EXPECT_EQ(pe.local_read<std::int64_t>(dest + e * 8), 15 + 6 * e);
    }
  }));
}

TEST(Reduce, MinMaxInt64) {
  JobEnv env(small_job(5, 5));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8);
    SymAddr dmin = pe.heap().allocate(8);
    SymAddr dmax = pe.heap().allocate(8);
    pe.local_write<std::int64_t>(src, 10 - static_cast<std::int64_t>(pe.rank()) * 3);
    co_await pe.reduce<std::int64_t>(dmin, src, 1, ReduceOp::kMin);
    co_await pe.reduce<std::int64_t>(dmax, src, 1, ReduceOp::kMax);
    EXPECT_EQ(pe.local_read<std::int64_t>(dmin), -2);  // rank 4: 10-12
    EXPECT_EQ(pe.local_read<std::int64_t>(dmax), 10);  // rank 0
  }));
}

TEST(Reduce, SumDouble) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8);
    SymAddr dest = pe.heap().allocate(8);
    pe.local_write<double>(src, 0.5 * (pe.rank() + 1));
    co_await pe.reduce<double>(dest, src, 1, ReduceOp::kSum);
    EXPECT_DOUBLE_EQ(pe.local_read<double>(dest), 0.5 + 1.0 + 1.5 + 2.0);
  }));
}

TEST(Reduce, ProdInt64) {
  JobEnv env(small_job(3, 3));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8);
    SymAddr dest = pe.heap().allocate(8);
    pe.local_write<std::int64_t>(src, pe.rank() + 2);
    co_await pe.reduce<std::int64_t>(dest, src, 1, ReduceOp::kProd);
    EXPECT_EQ(pe.local_read<std::int64_t>(dest), 2 * 3 * 4);
  }));
}

TEST(Reduce, RepeatedReductionsIndependent) {
  JobEnv env(small_job(4, 2));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8);
    SymAddr dest = pe.heap().allocate(8);
    for (std::int64_t round = 1; round <= 4; ++round) {
      pe.local_write<std::int64_t>(src, round);
      co_await pe.reduce<std::int64_t>(dest, src, 1, ReduceOp::kSum);
      EXPECT_EQ(pe.local_read<std::int64_t>(dest), 4 * round);
    }
  }));
}

TEST(Collectives, WorkIdenticallyUnderStaticDesign) {
  // Paper Fig 7: collective latency is the same under both designs; here we
  // check correctness parity (timing parity is a bench).
  JobEnv env(small_job(8, 4, core::current_design()));
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr src = pe.heap().allocate(8);
    SymAddr dest = pe.heap().allocate(8 * 8);
    SymAddr sum = pe.heap().allocate(8);
    pe.local_write<std::uint64_t>(src, pe.rank() * 7);
    co_await pe.fcollect(dest, src, 8);
    co_await pe.reduce<std::int64_t>(sum, src, 1, ReduceOp::kSum);
    for (RankId r = 0; r < 8; ++r) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(dest + r * 8), r * 7u);
    }
    EXPECT_EQ(pe.local_read<std::int64_t>(sum), 7 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  }));
}

}  // namespace
}  // namespace odcm::shmem
