// Property-based testing: random one-sided traffic against a shadow memory
// model. Every seed drives a different random schedule of puts, gets and
// atomics across the job; after a global barrier, every PE's heap must
// match the shadow model exactly, and runtime invariants must hold.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "shmem/job.hpp"
#include "sim/random.hpp"
#include "test_util.hpp"

namespace odcm::shmem {
namespace {

using testutil::JobEnv;
using testutil::small_job;
using testutil::with_init;

struct FuzzCase {
  std::uint64_t seed;
  std::uint32_t ranks;
  std::uint32_t ppn;
  bool static_design;
};

void PrintTo(const FuzzCase& c, std::ostream* os) {
  *os << "seed" << c.seed << "_r" << c.ranks << "_ppn" << c.ppn
      << (c.static_design ? "_static" : "_ondemand");
}

class RandomRmaFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RandomRmaFuzz, HeapMatchesShadowModel) {
  const FuzzCase param = GetParam();
  const std::uint32_t kSlots = 64;  // 8-byte slots per PE
  JobEnv env(small_job(param.ranks, param.ppn,
                       param.static_design ? core::current_design()
                                           : core::proposed_design()));

  // Shadow model: the expected final value of every slot. To keep the
  // oracle exact under concurrency, each slot has a unique writer (the PE
  // whose rng draws it), determined before the run.
  //
  // Plan: each PE executes a deterministic schedule of operations derived
  // from its own rng; writes target only slots it owns.
  std::vector<std::vector<std::uint64_t>> expected(
      param.ranks, std::vector<std::uint64_t>(kSlots, 0));
  // Slot s of PE p is owned (written) by PE (p + s) % ranks. Compute the
  // expected value: owner writes a sequence; last write wins. Atomic adds
  // accumulate from all PEs.
  // Writes: owner puts (round, owner) encoded. Adds: every PE adds its
  // rank+1 once per round to add-designated slots (s % 4 == 3).
  const int kRounds = 6;
  for (std::uint32_t p = 0; p < param.ranks; ++p) {
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      if (s % 4 == 3) {
        // Atomic accumulator slot: sum over rounds and PEs of (rank+1).
        std::uint64_t total = 0;
        for (std::uint32_t r = 0; r < param.ranks; ++r) total += r + 1;
        expected[p][s] = total * kRounds;
      } else {
        std::uint32_t owner = (p + s) % param.ranks;
        expected[p][s] = (kRounds - 1) * 1000003ULL + owner * 17ULL + s;
      }
    }
  }

  env.run(with_init([param, kSlots](ShmemPe& pe) -> sim::Task<> {
    SymAddr base = pe.heap().allocate(8 * kSlots);
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      pe.local_write<std::uint64_t>(base + 8 * s, 0);
    }
    co_await pe.barrier_all();

    sim::Rng rng(param.seed * 1000003 + pe.rank());
    for (int round = 0; round < 6; ++round) {
      // Visit targets in a random order each round.
      std::vector<std::uint32_t> order;
      for (std::uint32_t t = 0; t < param.ranks; ++t) order.push_back(t);
      for (std::uint32_t i = param.ranks - 1; i > 0; --i) {
        std::swap(order[i], order[rng.next_below(i + 1)]);
      }
      for (std::uint32_t target : order) {
        for (std::uint32_t s = 0; s < kSlots; ++s) {
          if (s % 4 == 3) {
            if (rng.chance(0.5)) {
              co_await pe.atomic_add(target, base + 8 * s, pe.rank() + 1);
            } else {
              (void)co_await pe.atomic_fetch_add(target, base + 8 * s,
                                                 pe.rank() + 1);
            }
            continue;
          }
          // Only the slot's owner writes it.
          if ((target + s) % param.ranks != pe.rank()) continue;
          std::uint64_t value =
              round * 1000003ULL + pe.rank() * 17ULL + s;
          if (rng.chance(0.3)) {
            std::vector<std::byte> bytes(8);
            std::memcpy(bytes.data(), &value, 8);
            pe.put_nbi(target, base + 8 * s, bytes);
          } else {
            co_await pe.put_value<std::uint64_t>(target, base + 8 * s,
                                                 value);
          }
        }
      }
      // Writes of round k must complete before round k+1 (last-wins
      // oracle needs ordering between rounds).
      co_await pe.barrier_all();
    }
    co_await pe.barrier_all();
  }));

  // Check every PE's heap against the shadow model.
  for (std::uint32_t p = 0; p < param.ranks; ++p) {
    for (std::uint32_t s = 0; s < kSlots; ++s) {
      EXPECT_EQ(env.job.pe(p).local_read<std::uint64_t>(8ULL * s),
                expected[p][s])
          << "pe " << p << " slot " << s;
    }
  }
  // Runtime invariants: established connections equal distinct peers; no
  // more endpoints than peers + the UD endpoint.
  for (std::uint32_t p = 0; p < param.ranks; ++p) {
    auto& pe = env.job.pe(p);
    auto established = static_cast<std::uint64_t>(
        pe.stats().counter("connections_established"));
    EXPECT_EQ(established, pe.communicating_peers()) << "pe " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomRmaFuzz,
    ::testing::Values(FuzzCase{1, 4, 2, false}, FuzzCase{2, 4, 2, false},
                      FuzzCase{3, 6, 3, false}, FuzzCase{4, 8, 4, false},
                      FuzzCase{5, 8, 2, false}, FuzzCase{6, 3, 1, false},
                      FuzzCase{7, 5, 5, false}, FuzzCase{8, 4, 2, true},
                      FuzzCase{9, 6, 3, true}, FuzzCase{10, 8, 4, true}));

// Lossy-fabric variant: same oracle must hold when the control channel
// drops and duplicates datagrams.
class LossyRmaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossyRmaFuzz, DataIntactUnderControlPlaneLoss) {
  const std::uint64_t seed = GetParam();
  ShmemJobConfig config = small_job(6, 2);
  config.job.fabric.ud_drop_rate = 0.35;
  config.job.fabric.ud_duplicate_rate = 0.15;
  config.job.fabric.ud_jitter_max = 3 * sim::usec;
  config.job.fabric.seed = seed;
  JobEnv env(config);
  env.run(with_init([](ShmemPe& pe) -> sim::Task<> {
    SymAddr slot = pe.heap().allocate(8 * 6);
    pe.local_write<std::uint64_t>(slot + 8 * pe.rank(), 0);
    co_await pe.barrier_all();
    for (RankId target = 0; target < 6; ++target) {
      co_await pe.put_value<std::uint64_t>(
          target, slot + 8 * pe.rank(), 0xABC000 + pe.rank());
    }
    co_await pe.barrier_all();
    for (RankId src = 0; src < 6; ++src) {
      EXPECT_EQ(pe.local_read<std::uint64_t>(slot + 8 * src),
                0xABC000ULL + src);
    }
  }));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyRmaFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace odcm::shmem
