// Unit tests for Gate, Trigger, Mailbox, Semaphore and JoinCounter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace odcm::sim {
namespace {

TEST(Gate, WaitAfterOpenCompletesImmediately) {
  Engine engine;
  Gate gate(engine);
  gate.open();
  bool done = false;
  engine.spawn([](Gate& g, bool& flag) -> Task<> {
    co_await g.wait();
    flag = true;
  }(gate, done));
  engine.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine.now(), 0u);
}

TEST(Gate, OpenWakesAllWaiters) {
  Engine engine;
  Gate gate(engine);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    engine.spawn([](Gate& g, int& counter) -> Task<> {
      co_await g.wait();
      ++counter;
    }(gate, woken));
  }
  engine.schedule_at(100, [&] { gate.open(); });
  engine.run();
  EXPECT_EQ(woken, 5);
  EXPECT_EQ(engine.now(), 100u);
}

TEST(Gate, OpenIsIdempotent) {
  Engine engine;
  Gate gate(engine);
  gate.open();
  gate.open();
  EXPECT_TRUE(gate.is_open());
}

TEST(Gate, WaitForReturnsTrueWhenOpenedBeforeTimeout) {
  Engine engine;
  Gate gate(engine);
  bool result = false;
  engine.spawn([](Gate& g, bool& out) -> Task<> {
    out = co_await g.wait_for(1000);
  }(gate, result));
  engine.schedule_at(500, [&] { gate.open(); });
  engine.run();
  EXPECT_TRUE(result);
}

TEST(Gate, WaitForReturnsFalseOnTimeout) {
  Engine engine;
  Gate gate(engine);
  bool result = true;
  Time finished = 0;
  engine.spawn([](Engine& eng, Gate& g, bool& out, Time& at) -> Task<> {
    out = co_await g.wait_for(1000);
    at = eng.now();
  }(engine, gate, result, finished));
  engine.run();
  EXPECT_FALSE(result);
  EXPECT_EQ(finished, 1000u);
}

TEST(Gate, LateOpenDoesNotDoubleResumeTimedWaiter) {
  Engine engine;
  Gate gate(engine);
  int resumed = 0;
  engine.spawn([](Gate& g, int& counter) -> Task<> {
    (void)co_await g.wait_for(10);
    ++counter;
    // Block again on a fresh wait; the stale open() must not touch us.
    co_await g.wait();
    ++counter;
  }(gate, resumed));
  engine.schedule_at(50, [&] { gate.open(); });
  engine.run();
  EXPECT_EQ(resumed, 2);
}

TEST(Trigger, NotifyAllWakesOnlyCurrentWaiters) {
  Engine engine;
  Trigger trigger(engine);
  std::vector<int> wakeups;
  engine.spawn([](Trigger& t, std::vector<int>& log) -> Task<> {
    co_await t.wait();
    log.push_back(1);
    co_await t.wait();
    log.push_back(2);
  }(trigger, wakeups));
  engine.schedule_at(10, [&] { trigger.notify_all(); });
  engine.schedule_at(20, [&] { trigger.notify_all(); });
  engine.run();
  EXPECT_EQ(wakeups, (std::vector<int>{1, 2}));
}

TEST(Mailbox, PopBlocksUntilPush) {
  Engine engine;
  Mailbox<int> mailbox(engine);
  int got = 0;
  Time at = 0;
  engine.spawn([](Engine& eng, Mailbox<int>& mb, int& out, Time& t) -> Task<> {
    out = co_await mb.pop();
    t = eng.now();
  }(engine, mailbox, got, at));
  engine.schedule_at(42, [&] { mailbox.push(7); });
  engine.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(at, 42u);
}

TEST(Mailbox, PreservesFifoOrder) {
  Engine engine;
  Mailbox<int> mailbox(engine);
  for (int i = 0; i < 10; ++i) mailbox.push(i);
  std::vector<int> received;
  engine.spawn([](Mailbox<int>& mb, std::vector<int>& out) -> Task<> {
    for (int i = 0; i < 10; ++i) out.push_back(co_await mb.pop());
  }(mailbox, received));
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(received[i], i);
}

TEST(Mailbox, TryPopNonBlocking) {
  Engine engine;
  Mailbox<std::string> mailbox(engine);
  EXPECT_FALSE(mailbox.try_pop().has_value());
  mailbox.push("hello");
  auto item = mailbox.try_pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, "hello");
  EXPECT_TRUE(mailbox.empty());
}

TEST(Mailbox, MultipleConsumersEachGetOneItem) {
  Engine engine;
  Mailbox<int> mailbox(engine);
  std::vector<int> received;
  for (int i = 0; i < 3; ++i) {
    engine.spawn([](Mailbox<int>& mb, std::vector<int>& out) -> Task<> {
      out.push_back(co_await mb.pop());
    }(mailbox, received));
  }
  engine.schedule_at(5, [&] {
    mailbox.push(100);
    mailbox.push(200);
    mailbox.push(300);
  });
  engine.run();
  ASSERT_EQ(received.size(), 3u);
  EXPECT_EQ(received[0] + received[1] + received[2], 600);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine engine;
  Semaphore semaphore(engine, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i) {
    engine.spawn(
        [](Engine& eng, Semaphore& sem, int& cur, int& max) -> Task<> {
          co_await sem.acquire();
          ++cur;
          max = std::max(max, cur);
          co_await eng.delay(10);
          --cur;
          sem.release();
        }(engine, semaphore, concurrent, peak));
  }
  engine.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(semaphore.available(), 2u);
}

TEST(JoinCounter, WaitsForAllChildren) {
  Engine engine;
  JoinCounter join(engine);
  int finished = 0;
  join.add(3);
  for (int i = 1; i <= 3; ++i) {
    engine.spawn([](Engine& eng, JoinCounter& jc, int delay, int& n) -> Task<> {
      co_await eng.delay(static_cast<Time>(delay * 10));
      ++n;
      jc.finish();
    }(engine, join, i, finished));
  }
  Time done_at = 0;
  engine.spawn([](Engine& eng, JoinCounter& jc, Time& at) -> Task<> {
    co_await jc.wait();
    at = eng.now();
  }(engine, join, done_at));
  engine.run();
  EXPECT_EQ(finished, 3);
  EXPECT_EQ(done_at, 30u);
}

TEST(JoinCounter, ZeroChildrenCompletesImmediately) {
  Engine engine;
  JoinCounter join(engine);
  bool done = false;
  engine.spawn([](JoinCounter& jc, bool& flag) -> Task<> {
    co_await jc.wait();
    flag = true;
  }(join, done));
  engine.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace odcm::sim
