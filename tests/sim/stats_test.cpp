// Unit tests for StatSet and PhaseTimer.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/metrics_sink.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace odcm::sim {
namespace {

/// Records every forwarded event for inspection.
struct RecordingSink : MetricsSink {
  void on_counter(std::string_view name, std::int64_t delta) override {
    counters.emplace_back(std::string(name), delta);
  }
  void on_duration(std::string_view name, Time dt) override {
    durations.emplace_back(std::string(name), dt);
  }
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, Time>> durations;
};

TEST(StatSet, CountersDefaultToZero) {
  StatSet stats;
  EXPECT_EQ(stats.counter("missing"), 0);
  EXPECT_EQ(stats.phase_time("missing"), 0u);
}

TEST(StatSet, AddAccumulates) {
  StatSet stats;
  stats.add("qp_created");
  stats.add("qp_created", 4);
  EXPECT_EQ(stats.counter("qp_created"), 5);
}

TEST(StatSet, NegativeDeltasAllowed) {
  StatSet stats;
  stats.add("balance", 10);
  stats.add("balance", -3);
  EXPECT_EQ(stats.counter("balance"), 7);
}

TEST(StatSet, MergeCombinesBoth) {
  StatSet a;
  StatSet b;
  a.add("x", 1);
  a.add_time("p", 100);
  b.add("x", 2);
  b.add("y", 3);
  b.add_time("p", 50);
  a.merge(b);
  EXPECT_EQ(a.counter("x"), 3);
  EXPECT_EQ(a.counter("y"), 3);
  EXPECT_EQ(a.phase_time("p"), 150u);
}

TEST(StatSet, ClearResets) {
  StatSet stats;
  stats.add("x");
  stats.add_time("p", 1);
  stats.clear();
  EXPECT_TRUE(stats.counters().empty());
  EXPECT_TRUE(stats.phases().empty());
}

TEST(StatSet, ForwardsToSink) {
  StatSet stats;
  RecordingSink sink;
  stats.set_sink(&sink);
  stats.add("qp_created", 2);
  stats.add_time("connect", 150);
  stats.set_sink(nullptr);
  stats.add("qp_created");  // not forwarded once detached
  ASSERT_EQ(sink.counters.size(), 1u);
  EXPECT_EQ(sink.counters[0], (std::pair<std::string, std::int64_t>{
                                  "qp_created", 2}));
  ASSERT_EQ(sink.durations.size(), 1u);
  EXPECT_EQ(sink.durations[0].second, 150u);
  // Local accounting is unaffected by the sink.
  EXPECT_EQ(stats.counter("qp_created"), 3);
}

TEST(PhaseTimer, MeasuresVirtualTimeAcrossSuspension) {
  Engine engine;
  StatSet stats;
  engine.spawn([](Engine& eng, StatSet& st) -> Task<> {
    PhaseTimer timer(eng, st, "connect");
    co_await eng.delay(250);
  }(engine, stats));
  engine.run();
  EXPECT_EQ(stats.phase_time("connect"), 250u);
}

TEST(PhaseTimer, StopIsIdempotent) {
  Engine engine;
  StatSet stats;
  engine.spawn([](Engine& eng, StatSet& st) -> Task<> {
    PhaseTimer timer(eng, st, "phase");
    co_await eng.delay(10);
    timer.stop();
    co_await eng.delay(90);
    timer.stop();  // no additional time recorded
  }(engine, stats));
  engine.run();
  EXPECT_EQ(stats.phase_time("phase"), 10u);
}

TEST(PhaseTimer, SequentialPhasesAccumulateSeparately) {
  Engine engine;
  StatSet stats;
  engine.spawn([](Engine& eng, StatSet& st) -> Task<> {
    {
      PhaseTimer timer(eng, st, "a");
      co_await eng.delay(10);
    }
    {
      PhaseTimer timer(eng, st, "b");
      co_await eng.delay(20);
    }
    {
      PhaseTimer timer(eng, st, "a");
      co_await eng.delay(5);
    }
  }(engine, stats));
  engine.run();
  EXPECT_EQ(stats.phase_time("a"), 15u);
  EXPECT_EQ(stats.phase_time("b"), 20u);
}

}  // namespace
}  // namespace odcm::sim
