// Unit tests for the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/random.hpp"

namespace odcm::sim {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDifferentSequences) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(777);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanIsRoughlyHalf) {
  Rng rng(99);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(31337);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2(42);
  (void)parent2.next_u64();  // advance past the fork draw
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (child.next_u64() == parent2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, GoodBitDispersion) {
  // All 64 output bits should flip at least occasionally.
  Rng rng(2024);
  std::uint64_t ones = 0;
  std::uint64_t zeros = 0;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.next_u64();
    ones |= v;
    zeros |= ~v;
  }
  EXPECT_EQ(ones, ~0ULL);
  EXPECT_EQ(zeros, ~0ULL);
}

}  // namespace
}  // namespace odcm::sim
