// Unit tests for the discrete-event engine and Task coroutines.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace odcm::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0u);
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30u);
}

TEST(Engine, SameTimeEventsFireInInsertionOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(100, [] {});
  engine.run();
  EXPECT_EQ(engine.now(), 100u);
  EXPECT_THROW(engine.schedule_at(50, [] {}), std::logic_error);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1, [&] {
    ++fired;
    engine.schedule_after(10, [&] { ++fired; });
  });
  engine.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(engine.now(), 11u);
}

TEST(Engine, DelayAdvancesVirtualTime) {
  Engine engine;
  Time observed = 0;
  engine.spawn([](Engine& eng, Time& out) -> Task<> {
    co_await eng.delay(5 * usec);
    out = eng.now();
  }(engine, observed));
  engine.run();
  EXPECT_EQ(observed, 5 * usec);
}

TEST(Engine, NestedTasksReturnValues) {
  Engine engine;
  int result = 0;

  auto leaf = [](Engine& eng) -> Task<int> {
    co_await eng.delay(10);
    co_return 21;
  };
  auto root = [&leaf](Engine& eng, int& out) -> Task<> {
    int a = co_await leaf(eng);
    int b = co_await leaf(eng);
    out = a + b;
  };

  engine.spawn(root(engine, result));
  engine.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(engine.now(), 20u);
}

TEST(Engine, DeeplyNestedTasksDoNotOverflowStack) {
  Engine engine;
  // 10k-deep chain of co_awaits; relies on symmetric transfer.
  struct Recur {
    static Task<int> depth(Engine& eng, int n) {
      if (n == 0) {
        co_await eng.delay(1);
        co_return 0;
      }
      int below = co_await depth(eng, n - 1);
      co_return below + 1;
    }
  };
  int result = -1;
  engine.spawn([](Engine& eng, int& out) -> Task<> {
    out = co_await Recur::depth(eng, 10000);
  }(engine, result));
  engine.run();
  EXPECT_EQ(result, 10000);
}

TEST(Engine, ExceptionsPropagateAcrossCoAwait) {
  Engine engine;
  auto thrower = [](Engine& eng) -> Task<int> {
    co_await eng.delay(1);
    throw std::runtime_error("boom");
  };
  bool caught = false;
  engine.spawn([](Engine& eng, decltype(thrower)& fn, bool& flag) -> Task<> {
    try {
      (void)co_await fn(eng);
    } catch (const std::runtime_error& error) {
      flag = std::string(error.what()) == "boom";
    }
  }(engine, thrower, caught));
  engine.run();
  EXPECT_TRUE(caught);
}

TEST(Engine, RootTaskExceptionSurfacesFromRun) {
  Engine engine;
  engine.spawn([](Engine& eng) -> Task<> {
    co_await eng.delay(3);
    throw std::runtime_error("root failure");
  }(engine));
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(Engine, RunDetectsDeadlockedRootTasks) {
  Engine engine;
  // A task that waits on an event that never fires: the queue drains while
  // the root is still live.
  struct Never {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  // The coroutine frame leaks by design here (never resumed, never
  // destroyed); acceptable inside a single test process.
  engine.spawn([]() -> Task<> { co_await Never{}; }());
  EXPECT_THROW(engine.run(), std::runtime_error);
  EXPECT_EQ(engine.live_root_tasks(), 1u);
}

TEST(Engine, ManyRootTasksAllComplete) {
  Engine engine;
  int done = 0;
  for (int i = 0; i < 1000; ++i) {
    engine.spawn([](Engine& eng, int& counter, int delay) -> Task<> {
      co_await eng.delay(static_cast<Time>(delay));
      ++counter;
    }(engine, done, i % 17));
  }
  engine.run();
  EXPECT_EQ(done, 1000);
  EXPECT_EQ(engine.live_root_tasks(), 0u);
}

TEST(Engine, DrainDoesNotThrowOnBlockedRoots) {
  Engine engine;
  struct Never {
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<>) const noexcept {}
    void await_resume() const noexcept {}
  };
  engine.spawn([]() -> Task<> { co_await Never{}; }());
  EXPECT_NO_THROW(engine.drain());
  EXPECT_EQ(engine.live_root_tasks(), 1u);
}

TEST(Engine, SeededShuffleDeterministicallyPermutesTies) {
  auto run_with_seed = [](std::uint64_t seed) {
    Engine engine;
    SchedulePolicy policy;
    policy.tie_break = SchedulePolicy::TieBreak::kSeededShuffle;
    policy.seed = seed;
    engine.set_schedule_policy(policy);
    std::vector<int> order;
    for (int i = 0; i < 32; ++i) {
      engine.schedule_at(5, [&order, i] { order.push_back(i); });
    }
    engine.run();
    return order;
  };
  std::vector<int> insertion(32);
  for (int i = 0; i < 32; ++i) insertion[i] = i;

  std::vector<int> first = run_with_seed(7);
  EXPECT_EQ(first, run_with_seed(7));  // replayable from the seed
  EXPECT_NE(first, insertion);         // and actually a permutation
  EXPECT_NE(first, run_with_seed(8));  // seed selects the permutation
  std::vector<int> sorted = first;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, insertion);  // nothing lost, nothing duplicated
}

TEST(Engine, SeededShuffleRespectsTimeOrder) {
  Engine engine;
  SchedulePolicy policy;
  policy.tie_break = SchedulePolicy::TieBreak::kSeededShuffle;
  policy.seed = 3;
  engine.set_schedule_policy(policy);
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, ExplicitInsertionPolicyMatchesDefault) {
  auto run = [](bool set_policy) {
    Engine engine;
    if (set_policy) {
      engine.set_schedule_policy(SchedulePolicy{});  // kInsertion, no jitter
    }
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
      engine.schedule_at(5, [&order, i] { order.push_back(i); });
    }
    engine.run();
    return order;
  };
  EXPECT_EQ(run(false), run(true));
  EXPECT_FALSE(SchedulePolicy{}.perturbs());
}

TEST(Engine, JitterDelaysFutureEventsWithinBound) {
  Engine engine;
  SchedulePolicy policy;
  policy.seed = 11;
  policy.jitter_max = 100;
  engine.set_schedule_policy(policy);
  std::vector<Time> stamps;
  for (int i = 0; i < 64; ++i) {
    engine.schedule_at(1000, [&stamps, &engine] {
      stamps.push_back(engine.now());
    });
  }
  engine.run();
  Time lo = stamps.front(), hi = stamps.front();
  for (Time t : stamps) {
    EXPECT_GE(t, 1000u);
    EXPECT_LE(t, 1100u);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_NE(lo, hi);  // 64 draws over [0, 100]: jitter actually applied
}

TEST(Engine, JitterNeverDelaysSameTimeEvents) {
  Engine engine;
  SchedulePolicy policy;
  policy.tie_break = SchedulePolicy::TieBreak::kSeededShuffle;
  policy.seed = 5;
  policy.jitter_max = 1000;
  engine.set_schedule_policy(policy);
  // A task spawned "now" and a gate-style zero-delay wakeup must stay at
  // the current timestamp under any policy (zero-latency semantics).
  Time spawn_time = ~Time{0};
  engine.schedule_at(0, [&] {
    engine.schedule_at(engine.now(), [&] { spawn_time = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(spawn_time, 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine engine;
    std::vector<Time> stamps;
    for (int i = 0; i < 50; ++i) {
      engine.spawn([](Engine& eng, std::vector<Time>& out, int i) -> Task<> {
        co_await eng.delay(static_cast<Time>((i * 37) % 11));
        out.push_back(eng.now());
        co_await eng.delay(static_cast<Time>((i * 13) % 7));
        out.push_back(eng.now());
      }(engine, stamps, i));
    }
    engine.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace odcm::sim
