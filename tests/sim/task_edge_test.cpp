// Edge-case tests for Task ownership/move semantics and engine behaviours
// not covered by the main engine suite.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace odcm::sim {
namespace {

Task<int> make_value(Engine& engine, int v) {
  co_await engine.delay(1);
  co_return v;
}

TEST(TaskEdge, MoveConstructionTransfersOwnership) {
  Engine engine;
  Task<int> a = make_value(engine, 5);
  EXPECT_TRUE(a.valid());
  Task<int> b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  int result = 0;
  engine.spawn([](Task<int> task, int& out) -> Task<> {
    out = co_await std::move(task);
  }(std::move(b), result));
  engine.run();
  EXPECT_EQ(result, 5);
}

TEST(TaskEdge, MoveAssignmentDestroysPrevious) {
  Engine engine;
  Task<int> a = make_value(engine, 1);
  Task<int> b = make_value(engine, 2);
  a = std::move(b);  // original frame of `a` must be destroyed, no leak
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.valid());
  int result = 0;
  engine.spawn([](Task<int> task, int& out) -> Task<> {
    out = co_await std::move(task);
  }(std::move(a), result));
  engine.run();
  EXPECT_EQ(result, 2);
}

TEST(TaskEdge, UnawaitedTaskIsDestroyedSafely) {
  Engine engine;
  {
    Task<int> ignored = make_value(engine, 9);
    // Never started, never awaited: destructor must clean the frame.
  }
  engine.run();  // nothing scheduled
  EXPECT_EQ(engine.events_executed(), 0u);
}

TEST(TaskEdge, SpawnEmptyTaskThrows) {
  Engine engine;
  Task<> empty;
  EXPECT_THROW(engine.spawn(std::move(empty)), std::logic_error);
}

TEST(TaskEdge, MoveOnlyResultsWork) {
  Engine engine;
  auto make_string = [](Engine& eng) -> Task<std::string> {
    co_await eng.delay(1);
    co_return std::string(1000, 'x');
  };
  std::size_t length = 0;
  engine.spawn([](Task<std::string> task, std::size_t& out) -> Task<> {
    std::string value = co_await std::move(task);
    out = value.size();
  }(make_string(engine), length));
  engine.run();
  EXPECT_EQ(length, 1000u);
}

TEST(TaskEdge, SpawnDiscardRunsToCompletion) {
  Engine engine;
  int hits = 0;
  spawn_discard(engine, [](Engine& eng, int& counter) -> Task<int> {
    co_await eng.delay(10);
    ++counter;
    co_return 7;
  }(engine, hits));
  engine.run();
  EXPECT_EQ(hits, 1);
}

TEST(TaskEdge, SequentialRunsReuseEngine) {
  Engine engine;
  for (int round = 0; round < 3; ++round) {
    int done = 0;
    engine.spawn([](Engine& eng, int& out) -> Task<> {
      co_await eng.delay(5);
      out = 1;
    }(engine, done));
    engine.run();
    EXPECT_EQ(done, 1);
  }
  EXPECT_EQ(engine.now(), 15u);
}

TEST(TaskEdge, GateSurvivesWaiterCompletingBeforeOpenCall) {
  Engine engine;
  auto gate = std::make_unique<Gate>(engine);
  bool woke = false;
  engine.spawn([](Gate& g, bool& flag) -> Task<> {
    co_await g.wait();
    flag = true;
  }(*gate, woke));
  engine.schedule_at(10, [&] { gate->open(); });
  engine.run();
  EXPECT_TRUE(woke);
  // Destroying an opened gate with no waiters is trivially safe.
  gate.reset();
}

TEST(TaskEdge, ExceptionInValueTaskPropagates) {
  Engine engine;
  auto thrower = [](Engine& eng) -> Task<int> {
    co_await eng.delay(1);
    throw std::runtime_error("typed boom");
  };
  std::string caught;
  engine.spawn([](Task<int> task, std::string& out) -> Task<> {
    try {
      (void)co_await std::move(task);
    } catch (const std::runtime_error& error) {
      out = error.what();
    }
  }(thrower(engine), caught));
  engine.run();
  EXPECT_EQ(caught, "typed boom");
}

}  // namespace
}  // namespace odcm::sim
