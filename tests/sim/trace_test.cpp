// Unit tests for the bounded-ring Tracer, including the regression for
// category counts drifting once the ring wraps.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/trace.hpp"

namespace odcm::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer tracer;
  tracer.record(1, "conn", 0, "ignored");
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.count("conn"), 0u);
}

TEST(Tracer, RecordsWhenEnabled) {
  Tracer tracer;
  tracer.enable();
  tracer.record(5, "conn", 2, "request");
  tracer.record(9, "pmi", 1, "put");
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].time, 5u);
  EXPECT_EQ(tracer.records()[1].category, "pmi");
  EXPECT_EQ(tracer.count("conn"), 1u);
  EXPECT_EQ(tracer.count("pmi"), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// Regression: counts_ used to keep counting dropped records, so after the
// ring wrapped, count(category) no longer agreed with records().
TEST(Tracer, CountsTrackRetainedRecordsAfterWrap) {
  Tracer tracer(/*capacity=*/4);
  tracer.enable();
  for (int i = 0; i < 4; ++i) tracer.record(i, "old", 0, "x");
  for (int i = 0; i < 3; ++i) tracer.record(10 + i, "new", 0, "y");
  EXPECT_EQ(tracer.records().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);
  // 3 "old" records fell off the ring; 1 remains alongside 3 "new".
  EXPECT_EQ(tracer.count("old"), 1u);
  EXPECT_EQ(tracer.count("new"), 3u);
  // Once the last "old" record drops, its category entry disappears.
  tracer.record(20, "new", 0, "z");
  EXPECT_EQ(tracer.count("old"), 0u);
  EXPECT_EQ(tracer.count("new"), 4u);
}

TEST(Tracer, ZeroCapacityClampsToOne) {
  Tracer tracer(/*capacity=*/0);
  tracer.enable();
  tracer.record(1, "a", 0, "first");
  tracer.record(2, "b", 0, "second");
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_EQ(tracer.records()[0].category, "b");
  EXPECT_EQ(tracer.count("a"), 0u);
  EXPECT_EQ(tracer.count("b"), 1u);
  EXPECT_EQ(tracer.dropped(), 1u);
}

TEST(Tracer, ClearResetsEverything) {
  Tracer tracer(2);
  tracer.enable();
  tracer.record(1, "a", 0, "x");
  tracer.record(2, "a", 0, "y");
  tracer.record(3, "a", 0, "z");
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.count("a"), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, CsvDumpQuotesText) {
  Tracer tracer;
  tracer.enable();
  tracer.record(7, "conn", 3, "req peer=1");
  std::ostringstream out;
  tracer.dump_csv(out);
  EXPECT_EQ(out.str(),
            "time_ns,category,actor,text\n"
            "7,conn,3,\"req peer=1\"\n");
}

}  // namespace
}  // namespace odcm::sim
