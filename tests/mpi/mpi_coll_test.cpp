// Tests for MPI gather/scatter/sendrecv, plus parameterized collective
// sweeps over geometry.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <tuple>
#include <vector>

#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::mpi {
namespace {

struct Env {
  explicit Env(std::uint32_t ranks, std::uint32_t ppn) {
    shmem::ShmemJobConfig config;
    config.job.ranks = ranks;
    config.job.ranks_per_node = ppn;
    config.shmem.heap_bytes = 1 << 16;
    config.shmem.shared_memory_base = 100 * sim::usec;
    config.shmem.shared_memory_per_pe = 10 * sim::usec;
    config.shmem.init_misc = 10 * sim::usec;
    job = std::make_unique<shmem::ShmemJob>(engine, config);
    for (RankId r = 0; r < ranks; ++r) {
      comms.push_back(
          std::make_unique<MpiComm>(job->conduit_job().conduit(r)));
    }
  }

  void run(std::function<sim::Task<>(MpiComm&)> body) {
    auto shared = std::make_shared<std::function<sim::Task<>(MpiComm&)>>(
        std::move(body));
    job->conduit_job().spawn_all(
        [this, shared](core::Conduit& c) -> sim::Task<> {
          MpiComm& comm = *comms[c.rank()];
          co_await comm.init();
          co_await (*shared)(comm);
          co_await comm.barrier();
        });
    engine.run();
  }

  sim::Engine engine;
  std::unique_ptr<shmem::ShmemJob> job;
  std::vector<std::unique_ptr<MpiComm>> comms;
};

TEST(MpiGather, CollectsToRoot) {
  Env env(6, 3);
  env.run([](MpiComm& comm) -> sim::Task<> {
    std::uint64_t mine = 500 + comm.rank();
    std::vector<std::byte> out(comm.rank() == 2 ? 8 * 6 : 0);
    co_await comm.gather(
        2, std::span<const std::byte>(reinterpret_cast<std::byte*>(&mine), 8),
        out);
    if (comm.rank() == 2) {
      for (RankId r = 0; r < 6; ++r) {
        std::uint64_t value = 0;
        std::memcpy(&value, out.data() + r * 8, 8);
        EXPECT_EQ(value, 500u + r);
      }
    }
  });
}

TEST(MpiScatter, DistributesFromRoot) {
  Env env(5, 5);
  env.run([](MpiComm& comm) -> sim::Task<> {
    std::vector<std::byte> in;
    if (comm.rank() == 0) {
      in.resize(8 * 5);
      for (RankId r = 0; r < 5; ++r) {
        std::uint64_t value = 900 + r * r;
        std::memcpy(in.data() + r * 8, &value, 8);
      }
    }
    std::vector<std::byte> out(8);
    co_await comm.scatter(0, in, out);
    std::uint64_t got = 0;
    std::memcpy(&got, out.data(), 8);
    EXPECT_EQ(got, 900u + comm.rank() * comm.rank());
  });
}

TEST(MpiSendrecv, SymmetricExchangeDoesNotDeadlock) {
  Env env(2, 1);
  env.run([](MpiComm& comm) -> sim::Task<> {
    std::uint64_t mine = 1000 + comm.rank();
    std::vector<std::byte> got = co_await comm.sendrecv(
        1 - comm.rank(), 9,
        std::span<const std::byte>(reinterpret_cast<std::byte*>(&mine), 8));
    std::uint64_t value = 0;
    std::memcpy(&value, got.data(), 8);
    EXPECT_EQ(value, 1000u + (1 - comm.rank()));
  });
}

TEST(MpiSendrecv, RingShiftEveryRank) {
  constexpr std::uint32_t kRanks = 7;
  Env env(kRanks, 4);
  env.run([](MpiComm& comm) -> sim::Task<> {
    // Everyone sendrecvs with its right neighbor... which is a cycle; use
    // two phases would be MPI-classic, but sendrecv's detached send makes
    // the full ring safe in one call per direction pair.
    std::uint64_t mine = 40 + comm.rank();
    RankId right = (comm.rank() + 1) % kRanks;
    RankId left = (comm.rank() + kRanks - 1) % kRanks;
    // Send to right, receive from left.
    std::vector<std::byte> copy(8);
    std::memcpy(copy.data(), &mine, 8);
    sim::spawn_discard(
        comm.conduit().engine(),
        [](MpiComm& c, RankId dst, std::vector<std::byte> data)
            -> sim::Task<int> {
          co_await c.send(dst, 5, data);
          co_return 0;
        }(comm, right, copy));
    std::vector<std::byte> got = co_await comm.recv(left, 5);
    std::uint64_t value = 0;
    std::memcpy(&value, got.data(), 8);
    EXPECT_EQ(value, 40u + left);
  });
}

using Geometry = std::tuple<std::uint32_t, std::uint32_t>;

class MpiCollectiveSweep : public ::testing::TestWithParam<Geometry> {};

TEST_P(MpiCollectiveSweep, GatherScatterAllreduceAgree) {
  auto [ranks, ppn] = GetParam();
  Env env(ranks, ppn);
  env.run([ranks = ranks](MpiComm& comm) -> sim::Task<> {
    // allreduce
    std::vector<std::int64_t> v{static_cast<std::int64_t>(comm.rank() + 1)};
    co_await comm.allreduce<std::int64_t>(v, ReduceOp::kSum);
    EXPECT_EQ(v[0],
              static_cast<std::int64_t>(ranks) * (ranks + 1) / 2);

    // gather to last rank, then scatter back shifted by one.
    RankId root = ranks - 1;
    std::uint64_t mine = comm.rank() * 11;
    std::vector<std::byte> gathered(comm.rank() == root ? 8 * ranks : 0);
    co_await comm.gather(
        root,
        std::span<const std::byte>(reinterpret_cast<std::byte*>(&mine), 8),
        gathered);
    std::vector<std::byte> rotated(comm.rank() == root ? 8 * ranks : 0);
    if (comm.rank() == root) {
      for (RankId r = 0; r < ranks; ++r) {
        std::memcpy(rotated.data() + r * 8,
                    gathered.data() + ((r + 1) % ranks) * 8, 8);
      }
    }
    std::vector<std::byte> out(8);
    co_await comm.scatter(root, rotated, out);
    std::uint64_t got = 0;
    std::memcpy(&got, out.data(), 8);
    EXPECT_EQ(got, ((comm.rank() + 1) % ranks) * 11ULL);
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, MpiCollectiveSweep,
                         ::testing::Values(Geometry{1, 1}, Geometry{2, 2},
                                           Geometry{3, 1}, Geometry{5, 4},
                                           Geometry{8, 4}, Geometry{13, 4},
                                           Geometry{16, 8}, Geometry{20, 5}));

}  // namespace
}  // namespace odcm::mpi
