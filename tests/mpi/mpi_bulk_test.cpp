// MPI-lite large-message tiering (ISSUE 9): messages above the rendezvous
// threshold ride an RTS / credit-grant / fragment-stream protocol inside
// the per-destination non-overtaking send chain. Pins:
//  * rendezvous payloads arrive intact and in posting order, interleaved
//    with eager messages on the same (src, tag);
//  * zero-byte sends still match a posted recv (MPI envelope semantics)
//    but never enter the rendezvous path or consume credits;
//  * the sender's fragment count reconciles with the receiver's, and
//    credit stalls show up in stats when the window is smaller than the
//    fragment count.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::mpi {
namespace {

/// Pure-conduit MPI environment with a tiering-enabled conduit config.
struct BulkEnv {
  explicit BulkEnv(std::uint32_t ranks, core::ConduitConfig conduit) {
    shmem::ShmemJobConfig config;
    config.job.ranks = ranks;
    config.job.ranks_per_node = 1;
    config.job.conduit = conduit;
    config.shmem.heap_bytes = 1 << 16;
    config.shmem.shared_memory_base = 100 * sim::usec;
    config.shmem.shared_memory_per_pe = 10 * sim::usec;
    config.shmem.init_misc = 10 * sim::usec;
    job = std::make_unique<shmem::ShmemJob>(engine, config);
    comms.resize(ranks);
    for (RankId r = 0; r < ranks; ++r) {
      comms[r] = std::make_unique<MpiComm>(job->conduit_job().conduit(r));
    }
  }

  void run(std::function<sim::Task<>(MpiComm&)> body) {
    auto shared = std::make_shared<std::function<sim::Task<>(MpiComm&)>>(
        std::move(body));
    job->conduit_job().spawn_all(
        [this, shared](core::Conduit& c) -> sim::Task<> {
          MpiComm& comm = *comms[c.rank()];
          co_await comm.init();
          co_await (*shared)(comm);
          co_await comm.barrier();
        });
    engine.run();
  }

  [[nodiscard]] sim::StatSet totals() {
    return job->conduit_job().aggregate_stats();
  }

  sim::Engine engine;
  std::unique_ptr<shmem::ShmemJob> job;
  std::vector<std::unique_ptr<MpiComm>> comms;
};

core::ConduitConfig tiered_design() {
  core::ConduitConfig conduit = core::proposed_design();
  conduit.eager_threshold = 256;
  conduit.rendezvous_threshold = 1024;
  conduit.bulk_chunk_bytes = 512;
  conduit.qp_credits = 2;
  return conduit;
}

std::vector<std::byte> pattern(std::uint64_t salt, std::size_t len) {
  std::vector<std::byte> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = static_cast<std::byte>((salt * 131 + i) & 0xff);
  }
  return out;
}

TEST(MpiBulk, RendezvousMessageArrivesIntact) {
  // Single-credit window: after every fragment the sender must wait for
  // the receiver's grant, so credit stalls are structurally guaranteed.
  core::ConduitConfig conduit = tiered_design();
  conduit.qp_credits = 1;
  BulkEnv env(2, conduit);
  env.run([](MpiComm& comm) -> sim::Task<> {
    const std::vector<std::byte> payload = pattern(7, 10000);
    if (comm.rank() == 0) {
      co_await comm.send(1, 42, payload);
    } else {
      std::vector<std::byte> got = co_await comm.recv(0, 42);
      EXPECT_EQ(got, payload);
    }
  });
  sim::StatSet totals = env.totals();
  EXPECT_EQ(totals.counter("mpi_rdv_sends"), 1);
  EXPECT_EQ(totals.counter("mpi_rdv_recvs"), 1);
  // 10000 bytes in 512-byte fragments under a 2-credit window: the sender
  // must have stalled for credit grants along the way, and every fragment
  // it sent was delivered.
  EXPECT_EQ(totals.counter("bulk_fragments_sent"), 20);
  EXPECT_EQ(totals.counter("bulk_fragments_sent"),
            totals.counter("bulk_fragments_delivered"));
  EXPECT_GT(totals.counter("mpi_credit_stalls"), 0);
}

TEST(MpiBulk, MixedSizesKeepPostingOrderPerTag) {
  // Non-overtaking: an eager message posted after a rendezvous message on
  // the same (dst, tag) must be received after it, even though the eager
  // path has no RTS round trip to wait for.
  BulkEnv env(2, tiered_design());
  env.run([](MpiComm& comm) -> sim::Task<> {
    const std::vector<std::byte> big = pattern(3, 5000);
    const std::vector<std::byte> small = pattern(4, 64);
    if (comm.rank() == 0) {
      MpiComm::Request s0 = comm.isend(1, 9, big);
      MpiComm::Request s1 = comm.isend(1, 9, small);
      MpiComm::Request s2 = comm.isend(1, 9, big);
      std::vector<MpiComm::Request> sends{s0, s1, s2};
      co_await comm.waitall(std::move(sends));
    } else {
      std::vector<std::byte> m0 = co_await comm.recv(0, 9);
      std::vector<std::byte> m1 = co_await comm.recv(0, 9);
      std::vector<std::byte> m2 = co_await comm.recv(0, 9);
      EXPECT_EQ(m0, big);
      EXPECT_EQ(m1, small);
      EXPECT_EQ(m2, big);
    }
  });
}

TEST(MpiBulk, EagerBounceCopyKeepsArrivalOrder) {
  // Two eager messages (both under the rendezvous threshold) posted
  // big-then-small to one (dst, tag): the receiver charges a
  // size-proportional bounce-copy delay inside concurrently running
  // handler tasks, so the later, smaller message finishes its copy while
  // the big one is still copying (50KB at 8 B/ns dwarfs the ~2us
  // inter-arrival gap). Its matchbox push must still come second —
  // deliveries chain per source (non-overtaking).
  core::ConduitConfig conduit = tiered_design();
  conduit.rendezvous_threshold = 1 << 16;  // keep a 50KB message eager
  BulkEnv env(2, conduit);
  env.run([](MpiComm& comm) -> sim::Task<> {
    const std::vector<std::byte> big = pattern(11, 50000);
    const std::vector<std::byte> small = pattern(12, 8);
    if (comm.rank() == 0) {
      MpiComm::Request s0 = comm.isend(1, 13, big);
      MpiComm::Request s1 = comm.isend(1, 13, small);
      std::vector<MpiComm::Request> sends{s0, s1};
      co_await comm.waitall(std::move(sends));
    } else {
      std::vector<std::byte> m0 = co_await comm.recv(0, 13);
      std::vector<std::byte> m1 = co_await comm.recv(0, 13);
      EXPECT_EQ(m0, big);
      EXPECT_EQ(m1, small);
    }
  });
  sim::StatSet totals = env.totals();
  EXPECT_EQ(totals.counter("mpi_rdv_sends"), 0);  // both stayed eager
}

TEST(MpiBulk, ZeroByteSendMatchesWithoutRendezvous) {
  BulkEnv env(2, tiered_design());
  env.run([](MpiComm& comm) -> sim::Task<> {
    if (comm.rank() == 0) {
      co_await comm.send(1, 5, std::vector<std::byte>{});
      std::vector<std::byte> back = co_await comm.recv(1, 6);
      EXPECT_TRUE(back.empty());
    } else {
      std::vector<std::byte> got = co_await comm.recv(0, 5);
      EXPECT_TRUE(got.empty());
      co_await comm.send(0, 6, std::vector<std::byte>{});
    }
  });
  sim::StatSet totals = env.totals();
  EXPECT_EQ(totals.counter("mpi_rdv_sends"), 0);
  EXPECT_EQ(totals.counter("bulk_fragments_sent"), 0);
  EXPECT_EQ(totals.counter("mpi_credit_stalls"), 0);
}

TEST(MpiBulk, ManyConcurrentRendezvousStreamsReconcile) {
  // Four ranks, each streaming a distinct large message to every other
  // rank concurrently: per-sequence reassembly at the receivers must not
  // mix streams, and the global fragment ledger must balance.
  constexpr std::uint32_t kRanks = 4;
  BulkEnv env(kRanks, tiered_design());
  env.run([](MpiComm& comm) -> sim::Task<> {
    const RankId me = comm.rank();
    std::vector<MpiComm::Request> recvs;
    std::vector<MpiComm::Request> sends;
    for (RankId peer = 0; peer < comm.size(); ++peer) {
      if (peer == me) continue;
      recvs.push_back(comm.irecv(peer, 77));
      sends.push_back(
          comm.isend(peer, 77, pattern(me * 100 + peer, 3000)));
    }
    std::size_t i = 0;
    for (RankId peer = 0; peer < comm.size(); ++peer) {
      if (peer == me) continue;
      std::vector<std::byte> got = co_await comm.wait(recvs[i++]);
      EXPECT_EQ(got, pattern(peer * 100 + me, 3000));
    }
    co_await comm.waitall(std::move(sends));
  });
  sim::StatSet totals = env.totals();
  EXPECT_EQ(totals.counter("mpi_rdv_sends"), kRanks * (kRanks - 1));
  EXPECT_EQ(totals.counter("bulk_fragments_sent"),
            totals.counter("bulk_fragments_delivered"));
}

}  // namespace
}  // namespace odcm::mpi
