// Tests for the MPI-lite layer and the unified-runtime property.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::mpi {
namespace {

/// Environment with one MpiComm per rank over a shmem job's conduits
/// (hybrid setting), or pure conduits.
struct Env {
  explicit Env(std::uint32_t ranks, std::uint32_t ppn) {
    shmem::ShmemJobConfig config;
    config.job.ranks = ranks;
    config.job.ranks_per_node = ppn;
    config.shmem.heap_bytes = 1 << 16;
    config.shmem.shared_memory_base = 100 * sim::usec;
    config.shmem.shared_memory_per_pe = 10 * sim::usec;
    config.shmem.init_misc = 10 * sim::usec;
    job = std::make_unique<shmem::ShmemJob>(engine, config);
    comms.resize(ranks);
    for (RankId r = 0; r < ranks; ++r) {
      comms[r] = std::make_unique<MpiComm>(job->conduit_job().conduit(r));
    }
  }

  void run_pure(std::function<sim::Task<>(MpiComm&)> body) {
    auto shared = std::make_shared<std::function<sim::Task<>(MpiComm&)>>(
        std::move(body));
    job->conduit_job().spawn_all(
        [this, shared](core::Conduit& c) -> sim::Task<> {
          MpiComm& comm = *comms[c.rank()];
          co_await comm.init();
          co_await (*shared)(comm);
          co_await comm.barrier();
        });
    engine.run();
  }

  sim::Engine engine;
  std::unique_ptr<shmem::ShmemJob> job;
  std::vector<std::unique_ptr<MpiComm>> comms;
};

std::vector<std::byte> encode_int(int value) {
  std::vector<std::byte> out(sizeof(int));
  std::memcpy(out.data(), &value, sizeof(int));
  return out;
}

int decode_int(const std::vector<std::byte>& bytes) {
  int value = -1;
  if (bytes.size() == sizeof(int)) {
    std::memcpy(&value, bytes.data(), sizeof(int));
  }
  return value;
}

TEST(Mpi, SendRecvRoundTrip) {
  Env env(2, 1);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    if (comm.rank() == 0) {
      co_await comm.send_value<std::uint64_t>(1, 7, 12345);
      std::uint64_t back = co_await comm.recv_value<std::uint64_t>(1, 8);
      EXPECT_EQ(back, 54321u);
    } else {
      std::uint64_t got = co_await comm.recv_value<std::uint64_t>(0, 7);
      EXPECT_EQ(got, 12345u);
      co_await comm.send_value<std::uint64_t>(0, 8, 54321);
    }
  });
}

TEST(Mpi, TagsKeepMessagesApart) {
  Env env(2, 1);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    if (comm.rank() == 0) {
      co_await comm.send_value<int>(1, 1, 100);
      co_await comm.send_value<int>(1, 2, 200);
    } else {
      // Receive in reverse tag order.
      int second = co_await comm.recv_value<int>(0, 2);
      int first = co_await comm.recv_value<int>(0, 1);
      EXPECT_EQ(first, 100);
      EXPECT_EQ(second, 200);
    }
  });
}

TEST(Mpi, SameTagPreservesOrder) {
  Env env(2, 1);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        co_await comm.send_value<int>(1, 5, i);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int got = co_await comm.recv_value<int>(0, 5);
        EXPECT_EQ(got, i);
      }
    }
  });
}

TEST(Mpi, LargeMessage) {
  Env env(2, 1);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    const std::size_t len = 256 * 1024;
    if (comm.rank() == 0) {
      std::vector<std::byte> data(len);
      for (std::size_t i = 0; i < len; ++i) {
        data[i] = static_cast<std::byte>(i % 251);
      }
      co_await comm.send(1, 3, data);
    } else {
      std::vector<std::byte> got = co_await comm.recv(0, 3);
      EXPECT_EQ(got.size(), len);
      bool ok = true;
      for (std::size_t i = 0; i < len; ++i) {
        ok = ok && got[i] == static_cast<std::byte>(i % 251);
      }
      EXPECT_TRUE(ok);
    }
  });
}

TEST(Mpi, BcastFromEveryRoot) {
  Env env(6, 3);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    for (RankId root = 0; root < 6; ++root) {
      std::uint64_t value = comm.rank() == root ? 4000 + root : 0;
      std::span<std::byte> view(reinterpret_cast<std::byte*>(&value), 8);
      co_await comm.bcast(root, view);
      EXPECT_EQ(value, 4000u + root);
    }
  });
}

TEST(Mpi, AllreduceSumAndMax) {
  Env env(8, 4);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    std::vector<std::int64_t> sum{static_cast<std::int64_t>(comm.rank()), 1};
    co_await comm.allreduce<std::int64_t>(sum, ReduceOp::kSum);
    EXPECT_EQ(sum[0], 28);  // 0+..+7
    EXPECT_EQ(sum[1], 8);

    std::vector<std::int64_t> max{static_cast<std::int64_t>(comm.rank() * 3)};
    co_await comm.allreduce<std::int64_t>(max, ReduceOp::kMax);
    EXPECT_EQ(max[0], 21);
  });
}

TEST(Mpi, ReduceToNonZeroRoot) {
  Env env(5, 5);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    std::vector<std::int64_t> v{1};
    co_await comm.reduce<std::int64_t>(3, v, ReduceOp::kSum);
    if (comm.rank() == 3) {
      EXPECT_EQ(v[0], 5);
    }
    co_await comm.barrier();
  });
}

TEST(Mpi, Allgather) {
  constexpr std::uint32_t kRanks = 7;
  Env env(kRanks, 4);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    std::uint64_t mine = 900 + comm.rank();
    std::vector<std::byte> out(8 * kRanks);
    co_await comm.allgather(
        std::span<const std::byte>(reinterpret_cast<std::byte*>(&mine), 8),
        out);
    for (RankId r = 0; r < kRanks; ++r) {
      std::uint64_t value = 0;
      std::memcpy(&value, out.data() + r * 8, 8);
      EXPECT_EQ(value, 900u + r);
    }
  });
}

TEST(Mpi, BarrierSynchronizes) {
  Env env(4, 2);
  std::vector<sim::Time> passed(4, 0);
  env.run_pure([&passed](MpiComm& comm) -> sim::Task<> {
    if (comm.rank() == 2) {
      co_await comm.conduit().engine().delay(1 * sim::msec);
    }
    co_await comm.barrier();
    passed[comm.rank()] = comm.conduit().engine().now();
  });
  for (RankId r = 0; r < 4; ++r) EXPECT_GE(passed[r], 1 * sim::msec);
}

TEST(Hybrid, ShmemAndMpiShareConnections) {
  // The unified-runtime property: SHMEM put + MPI send to the same peer use
  // one connection, not two.
  Env env(2, 1);
  env.job->spawn_all([&env](shmem::ShmemPe& pe) -> sim::Task<> {
    co_await pe.start_pes();
    MpiComm& comm = *env.comms[pe.rank()];
    shmem::SymAddr slot = pe.heap().allocate(8);
    if (pe.rank() == 0) {
      co_await pe.put_value<std::uint64_t>(1, slot, 1);
      co_await comm.send_value<int>(1, 1, 2);
    } else {
      int got = co_await comm.recv_value<int>(0, 1);
      EXPECT_EQ(got, 2);
    }
    co_await pe.finalize();
  });
  env.engine.run();
  EXPECT_EQ(env.job->pe(0).stats().counter("connections_established"), 1);
  EXPECT_EQ(env.job->pe(0).communicating_peers(), 1u);
}

TEST(Mpi, MatchboxesAreReclaimedWhenDrained) {
  // The per-(src, tag) mailboxes used to be created on first message and
  // never reclaimed, so cycling through tags leaked one mailbox per tag
  // ever used. A fully drained communicator must be back to zero.
  Env env(2, 1);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    constexpr int kTags = 32;
    if (comm.rank() == 0) {
      for (int t = 0; t < kTags; ++t) {
        co_await comm.send_value<int>(1, 100 + t, t);
      }
    } else {
      for (int t = 0; t < kTags; ++t) {
        int got = co_await comm.recv_value<int>(0, 100 + t);
        EXPECT_EQ(got, t);
      }
    }
  });
  EXPECT_EQ(env.comms[0]->matchbox_count(), 0u);
  EXPECT_EQ(env.comms[1]->matchbox_count(), 0u);
  // Reclaim is per-drain, not per-teardown: created == reclaimed.
  EXPECT_EQ(env.comms[1]->conduit().stats().counter("mpi_matchbox_created"),
            env.comms[1]->conduit().stats().counter("mpi_matchbox_reclaimed"));
}

TEST(Mpi, BackToBackSameTagSendsStayFifoUnderShuffledSchedules) {
  // MPI's non-overtaking rule, pinned under perturbed event schedules:
  // two back-to-back isends with the same (src, tag) — and the two irecvs
  // matching them — must pair up in posting order for every tie-break
  // seed. Seed 0 is the historical insertion order.
  for (std::uint64_t schedule_seed : {0ull, 1ull, 9ull, 23ull, 40ull}) {
    Env env(2, 1);
    if (schedule_seed != 0) {
      sim::SchedulePolicy policy;
      policy.tie_break = sim::SchedulePolicy::TieBreak::kSeededShuffle;
      policy.seed = schedule_seed;
      env.engine.set_schedule_policy(policy);
    }
    env.run_pure([schedule_seed](MpiComm& comm) -> sim::Task<> {
      if (comm.rank() == 0) {
        MpiComm::Request s0 = comm.isend(1, 5, encode_int(111));
        MpiComm::Request s1 = comm.isend(1, 5, encode_int(222));
        std::vector<MpiComm::Request> sends;
        sends.push_back(s0);
        sends.push_back(s1);
        co_await comm.waitall(std::move(sends));
      } else {
        MpiComm::Request r0 = comm.irecv(0, 5);
        MpiComm::Request r1 = comm.irecv(0, 5);
        std::vector<std::byte> m0 = co_await comm.wait(r0);
        std::vector<std::byte> m1 = co_await comm.wait(r1);
        EXPECT_EQ(decode_int(m0), 111) << "schedule_seed=" << schedule_seed;
        EXPECT_EQ(decode_int(m1), 222) << "schedule_seed=" << schedule_seed;
      }
    });
    EXPECT_EQ(env.comms[1]->matchbox_count(), 0u);
  }
}

TEST(Mpi, WtimeAdvances) {
  Env env(1, 1);
  env.run_pure([](MpiComm& comm) -> sim::Task<> {
    double t0 = comm.wtime();
    co_await comm.conduit().engine().delay(2 * sim::msec);
    double t1 = comm.wtime();
    EXPECT_NEAR(t1 - t0, 0.002, 1e-9);
  });
}

}  // namespace
}  // namespace odcm::mpi
