// Tests for MPI non-blocking requests (isend/irecv/wait/waitall).
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "mpi/mpi.hpp"
#include "shmem/job.hpp"

namespace odcm::mpi {
namespace {

struct Env {
  explicit Env(std::uint32_t ranks, std::uint32_t ppn) {
    shmem::ShmemJobConfig config;
    config.job.ranks = ranks;
    config.job.ranks_per_node = ppn;
    config.shmem.heap_bytes = 1 << 16;
    config.shmem.shared_memory_base = 100 * sim::usec;
    config.shmem.shared_memory_per_pe = 10 * sim::usec;
    config.shmem.init_misc = 10 * sim::usec;
    job = std::make_unique<shmem::ShmemJob>(engine, config);
    for (RankId r = 0; r < ranks; ++r) {
      comms.push_back(
          std::make_unique<MpiComm>(job->conduit_job().conduit(r)));
    }
  }

  void run(std::function<sim::Task<>(MpiComm&)> body) {
    auto shared = std::make_shared<std::function<sim::Task<>(MpiComm&)>>(
        std::move(body));
    job->conduit_job().spawn_all(
        [this, shared](core::Conduit& c) -> sim::Task<> {
          MpiComm& comm = *comms[c.rank()];
          co_await comm.init();
          co_await (*shared)(comm);
          co_await comm.barrier();
        });
    engine.run();
  }

  sim::Engine engine;
  std::unique_ptr<shmem::ShmemJob> job;
  std::vector<std::unique_ptr<MpiComm>> comms;
};

TEST(MpiNbi, IsendIrecvRoundTrip) {
  Env env(2, 1);
  env.run([](MpiComm& comm) -> sim::Task<> {
    if (comm.rank() == 0) {
      std::uint64_t value = 13579;
      MpiComm::Request send_req = comm.isend(
          1, 4,
          std::span<const std::byte>(reinterpret_cast<std::byte*>(&value),
                                     8));
      std::vector<std::byte> none = co_await comm.wait(send_req);
      EXPECT_TRUE(none.empty());
    } else {
      MpiComm::Request recv_req = comm.irecv(0, 4);
      std::vector<std::byte> data = co_await comm.wait(recv_req);
      std::uint64_t value = 0;
      std::memcpy(&value, data.data(), 8);
      EXPECT_EQ(value, 13579u);
    }
  });
}

TEST(MpiNbi, SymmetricExchangeWithRequestsNoDeadlock) {
  // Classic deadlock pattern with blocking send/recv: both post sends
  // first. Non-blocking requests make it safe.
  Env env(2, 1);
  env.run([](MpiComm& comm) -> sim::Task<> {
    std::uint64_t mine = 100 + comm.rank();
    MpiComm::Request send_req = comm.isend(
        1 - comm.rank(), 1,
        std::span<const std::byte>(reinterpret_cast<std::byte*>(&mine), 8));
    MpiComm::Request recv_req = comm.irecv(1 - comm.rank(), 1);
    std::vector<std::byte> got = co_await comm.wait(recv_req);
    co_await comm.wait(send_req);
    std::uint64_t value = 0;
    std::memcpy(&value, got.data(), 8);
    EXPECT_EQ(value, 100u + (1 - comm.rank()));
  });
}

TEST(MpiNbi, WaitallCompletesManyRequests) {
  constexpr std::uint32_t kRanks = 6;
  Env env(kRanks, 3);
  std::vector<int> received(kRanks, 0);
  env.run([&received](MpiComm& comm) -> sim::Task<> {
    std::vector<MpiComm::Request> requests;
    // Post all receives first, then all sends, then waitall.
    std::vector<MpiComm::Request> recvs;
    for (RankId peer = 0; peer < kRanks; ++peer) {
      if (peer != comm.rank()) recvs.push_back(comm.irecv(peer, 2));
    }
    std::uint64_t mine = comm.rank();
    for (RankId peer = 0; peer < kRanks; ++peer) {
      if (peer != comm.rank()) {
        requests.push_back(comm.isend(
            peer, 2,
            std::span<const std::byte>(
                reinterpret_cast<std::byte*>(&mine), 8)));
      }
    }
    co_await comm.waitall(std::move(requests));
    for (MpiComm::Request& request : recvs) {
      std::vector<std::byte> data = co_await comm.wait(std::move(request));
      EXPECT_EQ(data.size(), 8u);
      ++received[comm.rank()];
    }
  });
  for (RankId r = 0; r < kRanks; ++r) {
    EXPECT_EQ(received[r], static_cast<int>(kRanks - 1));
  }
}

TEST(MpiNbi, InvalidRequestThrows) {
  Env env(1, 1);
  env.job->conduit_job().spawn_all([&env](core::Conduit& c) -> sim::Task<> {
    MpiComm& comm = *env.comms[c.rank()];
    co_await comm.init();
    MpiComm::Request empty;
    EXPECT_FALSE(empty.valid());
    EXPECT_THROW((void)comm.wait(empty), std::logic_error);
  });
  env.engine.run();
}

}  // namespace
}  // namespace odcm::mpi
